module G = Gb_datagen.Generate
module Spec = Gb_datagen.Spec
module Mat = Gb_linalg.Mat
open Gb_relational

type t = G.t

let generate = G.generate
let of_size size = G.generate (Spec.of_size size)

let microarray_schema =
  Schema.make
    [ ("gene_id", Value.TInt); ("patient_id", Value.TInt); ("value", Value.TFloat) ]

let patients_schema =
  Schema.make
    [
      ("patient_id", Value.TInt);
      ("age", Value.TInt);
      ("gender", Value.TInt);
      ("zipcode", Value.TInt);
      ("disease_id", Value.TInt);
      ("drug_response", Value.TFloat);
    ]

let genes_schema =
  Schema.make
    [
      ("gene_id", Value.TInt);
      ("target", Value.TInt);
      ("position", Value.TInt);
      ("length", Value.TInt);
      ("func", Value.TInt);
    ]

let go_schema =
  Schema.make [ ("gene_id", Value.TInt); ("go_id", Value.TInt) ]

let variants_schema =
  Schema.make
    [ ("variant_id", Value.TInt); ("vstart", Value.TInt); ("vlen", Value.TInt) ]

let microarray_rows (t : t) =
  let p, g = Mat.dims t.expression in
  let out = ref [] in
  for j = g - 1 downto 0 do
    for i = p - 1 downto 0 do
      out :=
        [| Value.Int j; Value.Int i; Value.Float (Mat.unsafe_get t.expression i j) |]
        :: !out
    done
  done;
  !out

let patients_rows (t : t) =
  Array.to_list t.patients
  |> List.map (fun (p : G.patient) ->
         [|
           Value.Int p.patient_id;
           Value.Int p.age;
           Value.Int p.gender;
           Value.Int p.zipcode;
           Value.Int p.disease_id;
           Value.Float p.drug_response;
         |])

let genes_rows (t : t) =
  Array.to_list t.genes
  |> List.map (fun (g : G.gene) ->
         [|
           Value.Int g.gene_id;
           Value.Int g.target;
           Value.Int g.position;
           Value.Int g.length;
           Value.Int g.func;
         |])

let go_rows (t : t) =
  Array.to_list t.go
  |> List.map (fun (g, term) -> [| Value.Int g; Value.Int term |])

let variants_rows (t : t) =
  Array.to_list t.variants
  |> List.map (fun (v : G.variant) ->
         [| Value.Int v.variant_id; Value.Int v.vstart; Value.Int v.vlen |])

type relational_db = {
  microarray_r : Row_store.t;
  patients_r : Row_store.t;
  genes_r : Row_store.t;
  go_r : Row_store.t;
  variants_r : Row_store.t;
}

type columnar_db = {
  microarray_c : Col_store.t;
  patients_c : Col_store.t;
  genes_c : Col_store.t;
  go_c : Col_store.t;
  variants_c : Col_store.t;
}

let load_row_stores t =
  {
    microarray_r = Row_store.of_rows microarray_schema (microarray_rows t);
    patients_r = Row_store.of_rows patients_schema (patients_rows t);
    genes_r = Row_store.of_rows genes_schema (genes_rows t);
    go_r = Row_store.of_rows go_schema (go_rows t);
    variants_r = Row_store.of_rows variants_schema (variants_rows t);
  }

let load_col_stores t =
  {
    microarray_c = Col_store.of_rows microarray_schema (microarray_rows t);
    patients_c = Col_store.of_rows patients_schema (patients_rows t);
    genes_c = Col_store.of_rows genes_schema (genes_rows t);
    go_c = Col_store.of_rows go_schema (go_rows t);
    variants_c = Col_store.of_rows variants_schema (variants_rows t);
  }

type array_db = {
  expression : Gb_arraydb.Chunked.t;
  patient_attrs : Gb_arraydb.Attr_array.t;
  gene_attrs : Gb_arraydb.Attr_array.t;
  go_pairs : (int * int) array;
  variant_ranges : (int * int) array;
      (* (vstart, vlen) indexed by variant_id: a 1-D ragged array of
         genomic ranges, the natural SciDB layout for interval data *)
}

let load_array_db (t : t) =
  let fi = float_of_int in
  {
    expression = Gb_arraydb.Chunked.of_matrix t.expression;
    patient_attrs =
      Gb_arraydb.Attr_array.of_columns
        [
          ("age", Array.map (fun (p : G.patient) -> fi p.age) t.patients);
          ("gender", Array.map (fun (p : G.patient) -> fi p.gender) t.patients);
          ("zipcode", Array.map (fun (p : G.patient) -> fi p.zipcode) t.patients);
          ( "disease_id",
            Array.map (fun (p : G.patient) -> fi p.disease_id) t.patients );
          ( "drug_response",
            Array.map (fun (p : G.patient) -> p.drug_response) t.patients );
        ];
    gene_attrs =
      Gb_arraydb.Attr_array.of_columns
        [
          ("target", Array.map (fun (g : G.gene) -> fi g.target) t.genes);
          ("position", Array.map (fun (g : G.gene) -> fi g.position) t.genes);
          ("length", Array.map (fun (g : G.gene) -> fi g.length) t.genes);
          ("func", Array.map (fun (g : G.gene) -> fi g.func) t.genes);
        ];
    go_pairs = t.go;
    variant_ranges =
      Array.map (fun (v : G.variant) -> (v.vstart, v.vlen)) t.variants;
  }

type hadoop_db = {
  microarray_h : string list;
  patients_h : string list;
  genes_h : string list;
  go_h : string list;
  variants_h : string list;
}

let load_hadoop_db (t : t) =
  let p, g = Mat.dims t.expression in
  let micro = ref [] in
  for j = g - 1 downto 0 do
    for i = p - 1 downto 0 do
      micro :=
        Printf.sprintf "%d,%d,%.12g" j i (Mat.unsafe_get t.expression i j)
        :: !micro
    done
  done;
  {
    microarray_h = !micro;
    patients_h =
      Array.to_list t.patients
      |> List.map (fun (p : G.patient) ->
             Printf.sprintf "%d,%d,%d,%d,%d,%.12g" p.patient_id p.age p.gender
               p.zipcode p.disease_id p.drug_response);
    genes_h =
      Array.to_list t.genes
      |> List.map (fun (g : G.gene) ->
             Printf.sprintf "%d,%d,%d,%d,%d" g.gene_id g.target g.position
               g.length g.func);
    go_h =
      Array.to_list t.go
      |> List.map (fun (g, term) -> Printf.sprintf "%d,%d" g term);
    variants_h =
      Array.to_list t.variants
      |> List.map (fun (v : G.variant) ->
             Printf.sprintf "%d,%d,%d" v.variant_id v.vstart v.vlen);
  }
