type payload =
  | Regression of { intercept : float; coefficients : float array; r2 : float }
  | Cov_pairs of { n_genes : int; top_pairs : (int * int * float) list }
  | Biclusters of { clusters : (int array * int array * float) list }
  | Singular_values of float array
  | Enrichment of (int * float) list
  | Overlaps of {
      n_variants : int;
      n_genes : int;
      pairs : (int * int * int) list;
    }

let payload_kind = function
  | Regression _ -> "regression"
  | Cov_pairs _ -> "cov_pairs"
  | Biclusters _ -> "biclusters"
  | Singular_values _ -> "singular_values"
  | Enrichment _ -> "enrichment"
  | Overlaps _ -> "overlaps"

type timing = { dm : float; analytics : float }

let total t = t.dm +. t.analytics

type recovery = {
  retries : int;
  recovered_nodes : int;
  speculative : int;
  wasted_s : float;
}

let no_recovery =
  { retries = 0; recovered_nodes = 0; speculative = 0; wasted_s = 0. }

type outcome =
  | Completed of timing * payload
  | Degraded of timing * recovery * payload
  | Timed_out
  | Out_of_memory
  | Errored of string
  | Unsupported

let completed t ?(recovery = no_recovery) p =
  if recovery = no_recovery then Completed (t, p) else Degraded (t, recovery, p)

let timing_of = function
  | Completed (t, _) | Degraded (t, _, _) -> Some t
  | Timed_out | Out_of_memory | Errored _ | Unsupported -> None

let payload_of = function
  | Completed (_, p) | Degraded (_, _, p) -> Some p
  | Timed_out | Out_of_memory | Errored _ | Unsupported -> None

let recovery_of = function Degraded (_, r, _) -> Some r | _ -> None

type t = {
  name : string;
  kind : [ `Single_node | `Multi_node of int ];
  supports : Query.t -> bool;
  load : Dataset.t -> Query.t -> params:Query.params -> timeout_s:float -> outcome;
}

exception Memory_exceeded

let run e ds q ?(params = Query.default_params) ~timeout_s () =
  if not (e.supports q) then Unsupported
  else
    try
      (* Arm the cooperative-cancellation deadline for this domain: the
         kernels checkpoint once per outer iteration, so a wall-clock
         engine stops mid-factorization instead of overrunning its
         window until the next phase boundary. Simulated engines finish
         in far less wall time than their simulated budget, so the
         ambient deadline never fires before their own Sim deadline. *)
      Gb_util.Deadline.Ambient.with_deadline
        (Gb_util.Deadline.start ~seconds:timeout_s)
        (fun () -> e.load ds q ~params ~timeout_s)
    with
    | Gb_util.Deadline.Timeout | Gb_mapreduce.Mr.Timeout -> Timed_out
    | Memory_exceeded | Out_of_memory | Gb_fault.Fault.Injected_oom _ ->
      Out_of_memory
    | Stack_overflow -> Out_of_memory
    | Invalid_argument msg | Failure msg -> Errored msg
    | exn ->
      (* Catch-all: one bad kernel must never abort a whole harness grid;
         anything that is not a timeout or a memory failure is an error
         result for this cell only. *)
      Errored (Printexc.to_string exn)

let pp_outcome fmt = function
  | Completed (t, _) ->
    Format.fprintf fmt "ok dm=%.3fs analytics=%.3fs" t.dm t.analytics
  | Degraded (t, r, _) ->
    Format.fprintf fmt
      "degraded dm=%.3fs analytics=%.3fs (retries=%d recovered=%d spec=%d \
       wasted=%.3fs)"
      t.dm t.analytics r.retries r.recovered_nodes r.speculative r.wasted_s
  | Timed_out -> Format.pp_print_string fmt "timeout"
  | Out_of_memory -> Format.pp_print_string fmt "out-of-memory"
  | Errored msg -> Format.fprintf fmt "error: %s" msg
  | Unsupported -> Format.pp_print_string fmt "unsupported"
