open Gb_relational
module Mat = Gb_linalg.Mat
module Stopwatch = Gb_util.Clock.Stopwatch

type backend = Row_backend | Col_backend

let make_db backend ds ~check =
  match backend with
  | Row_backend ->
    let db = Dataset.load_row_stores ds in
    let scan table cols =
      let store =
        match table with
        | "microarray" -> db.Dataset.microarray_r
        | "patients" -> db.Dataset.patients_r
        | "genes" -> db.Dataset.genes_r
        | "go" -> db.Dataset.go_r
        | "variants" -> db.Dataset.variants_r
        | _ -> invalid_arg ("unknown table " ^ table)
      in
      (* A row store decodes whole tuples, then projects. *)
      Ops.project cols (Ops.scan_row_store store)
    in
    let row_count table =
      Row_store.row_count
        (match table with
        | "microarray" -> db.Dataset.microarray_r
        | "patients" -> db.Dataset.patients_r
        | "genes" -> db.Dataset.genes_r
        | "go" -> db.Dataset.go_r
        | "variants" -> db.Dataset.variants_r
        | t -> invalid_arg t)
    in
    { Relops.scan; row_count; check }
  | Col_backend ->
    let db = Dataset.load_col_stores ds in
    let scan table cols =
      let store =
        match table with
        | "microarray" -> db.Dataset.microarray_c
        | "patients" -> db.Dataset.patients_c
        | "genes" -> db.Dataset.genes_c
        | "go" -> db.Dataset.go_c
        | "variants" -> db.Dataset.variants_c
        | _ -> invalid_arg ("unknown table " ^ table)
      in
      Ops.scan_col_store store cols
    in
    let row_count table =
      Col_store.row_count
        (match table with
        | "microarray" -> db.Dataset.microarray_c
        | "patients" -> db.Dataset.patients_c
        | "genes" -> db.Dataset.genes_c
        | "go" -> db.Dataset.go_c
        | "variants" -> db.Dataset.variants_c
        | t -> invalid_arg t)
    in
    { Relops.scan; row_count; check }

(* The export boundary ships the pivoted matrix (and response vector)
   through text, as the paper's external-R configurations must. *)
let cross_boundary boundary m =
  match boundary with
  | `Udf -> m
  | `Export_to_r -> Export.roundtrip_matrix m

let cross_boundary_vec boundary y =
  match boundary with
  | `Udf -> y
  | `Export_to_r ->
    let m = Mat.init (Array.length y) 1 (fun i _ -> y.(i)) in
    Mat.col (Export.roundtrip_matrix m) 0

let run ~backend ~boundary ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:timeout_s in
  let check () = Gb_util.Deadline.check dl in
  let db = make_db backend ds ~check in
  let time name f =
    Gb_obs.Profile.with_ ~cat:"phase" ~name
      ~dur_of:(fun (_, t) -> Some t)
      (fun () ->
        let r, t = Stopwatch.time f in
        check ();
        (r, t))
  in
  match query with
  | Query.Q1_regression ->
    let (x, y, _gene_ids), dm0 = time "dm" (fun () -> Relops.q1_dm db params) in
    let (x, y), dm1 =
      time "boundary" (fun () ->
          (cross_boundary boundary x, cross_boundary_vec boundary y))
    in
    let payload, analytics =
      time "analytics" (fun () -> Qcommon.regression_of x y)
    in
    Engine.Completed ({ dm = dm0 +. dm1; analytics }, payload)
  | Query.Q2_covariance ->
    let (m, gene_ids), dm0 = time "dm" (fun () -> Relops.q2_dm db params) in
    let m, dm1 = time "boundary" (fun () -> cross_boundary boundary m) in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.covariance_of ~gene_ids ~top_fraction:params.cov_top_fraction
            m)
    in
    (* Step 4: the thresholded pairs go back into the DBMS and join the
       gene metadata. *)
    let pairs =
      match payload with Engine.Cov_pairs p -> p.top_pairs | _ -> []
    in
    let _n, dm2 =
      time "dm:join_metadata" (fun () -> Relops.q2_join_metadata db pairs)
    in
    Engine.Completed ({ dm = dm0 +. dm1 +. dm2; analytics }, payload)
  | Query.Q3_biclustering ->
    let m, dm0 = time "dm" (fun () -> Relops.q3_dm db params) in
    let m, dm1 = time "boundary" (fun () -> cross_boundary boundary m) in
    let payload, analytics =
      time "analytics" (fun () ->
          (match boundary with
          | `Udf ->
            (* The in-DB R-UDF interface marshals the matrix through the
               UDF protocol repeatedly during the iterative algorithm. *)
            for _ = 1 to 3 do
              ignore (Export.roundtrip_matrix m)
            done
          | `Export_to_r -> ());
          Qcommon.biclusters_of m)
    in
    Engine.Completed ({ dm = dm0 +. dm1; analytics }, payload)
  | Query.Q4_svd ->
    let (x, _gene_ids), dm0 = time "dm" (fun () -> Relops.q4_dm db params) in
    let x, dm1 = time "boundary" (fun () -> cross_boundary boundary x) in
    let payload, analytics =
      time "analytics" (fun () -> Qcommon.svd_of ~k:params.svd_k x)
    in
    Engine.Completed ({ dm = dm0 +. dm1; analytics }, payload)
  | Query.Q5_statistics ->
    let (scores, go_pairs), dm0 =
      time "dm" (fun () ->
          Relops.q5_dm db params ~n_patients:(Array.length ds.Gb_datagen.Generate.patients))
    in
    let scores, dm1 =
      time "boundary" (fun () -> cross_boundary_vec boundary scores)
    in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.enrichment_of
            ~n_genes:(Array.length scores)
            ~go_pairs
            ~go_terms:ds.Gb_datagen.Generate.spec.Gb_datagen.Spec.go_terms
            ~p_threshold:params.p_threshold ~scores)
    in
    Engine.Completed ({ dm = dm0 +. dm1; analytics }, payload)
  | Query.Q6_overlap ->
    (* Pure-relational: the planner's Interval_join sweep does all the
       work in the store; only the integer pair list crosses the R/UDF
       boundary, which costs the same either way. *)
    let pairs, dm = time "dm" (fun () -> Relops.q6_dm db params) in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.overlaps_of
            ~n_variants:(Array.length ds.Gb_datagen.Generate.variants)
            ~n_genes:(Array.length ds.Gb_datagen.Generate.genes)
            pairs)
    in
    Engine.Completed ({ dm; analytics }, payload)

let make ~name ~backend ~boundary =
  {
    Engine.name;
    kind = `Single_node;
    supports = (fun _ -> true);
    load = run ~backend ~boundary;
  }

let postgres_r =
  make ~name:"Postgres + R" ~backend:Row_backend ~boundary:`Export_to_r

let colstore_r =
  make ~name:"Column store + R" ~backend:Col_backend ~boundary:`Export_to_r

let colstore_udf =
  make ~name:"Column store + UDFs" ~backend:Col_backend ~boundary:`Udf
