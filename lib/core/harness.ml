module Spec = Gb_datagen.Spec
module Render = Gb_util.Render

type cell = {
  engine : string;
  nodes : int;
  query : Query.t;
  size : Spec.size;
  outcome : Engine.outcome;
  breakdown : (string * float) list;
  counters : (string * float) list;
}

(* Sub-second cells are rerun a few times and the fastest kept:
   at this reproduction's scale some analytics phases take milliseconds and
   a single measurement is noise-dominated (visible in the Table 1
   speedups otherwise). *)
let run_cell e ds query ~timeout_s =
  let rec best outcome tries =
    match outcome with
    | Engine.Completed (t, _) when Engine.total t < 1.0 && tries > 0 ->
      let again = Engine.run e ds query ~timeout_s () in
      let better =
        match again with
        | Engine.Completed (t2, _) when Engine.total t2 < Engine.total t ->
          again
        | _ -> outcome
      in
      best better (tries - 1)
    | _ -> outcome
  in
  let size = ds.Gb_datagen.Generate.spec.Spec.size in
  let root_name =
    Printf.sprintf "cell:%s/%s/%s" e.Engine.name (Query.name query)
      (Spec.label size)
  in
  let mark = Gb_obs.Obs.mark () in
  let before = Gb_obs.Metric.snapshot () in
  (* The root span's duration is the engine-reported total of the kept
     attempt, not wall elapsed: wall time would fold in the untimed
     dataset loading and the discarded re-runs. *)
  let outcome =
    Gb_obs.Profile.with_ ~cat:"cell" ~name:root_name
      ~dur_of:(fun outcome ->
        match outcome with
        | Engine.Completed (t, _) | Engine.Degraded (t, _, _) ->
          Some (Engine.total t)
        | _ -> None)
      (fun () -> best (Engine.run e ds query ~timeout_s ()) 4)
  in
  let breakdown, counters =
    if Gb_obs.Obs.enabled () then
      ( Gb_obs.Trace_export.top_spans ~k:5 ~exclude_cat:"cell"
          (Gb_obs.Obs.events_since mark),
        Gb_obs.Metric.delta before )
    else ([], [])
  in
  {
    engine = e.Engine.name;
    nodes = (match e.Engine.kind with `Single_node -> 1 | `Multi_node n -> n);
    query;
    size;
    outcome;
    breakdown;
    counters;
  }

let total_seconds c =
  match c.outcome with
  | Engine.Completed (t, _) | Engine.Degraded (t, _, _) -> Some (Engine.total t)
  | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _ -> Some infinity
  | Engine.Unsupported -> None

let dm_seconds c =
  match c.outcome with
  | Engine.Completed (t, _) | Engine.Degraded (t, _, _) -> Some t.Engine.dm
  | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _ -> Some infinity
  | Engine.Unsupported -> None

let analytics_seconds c =
  match c.outcome with
  | Engine.Completed (t, _) | Engine.Degraded (t, _, _) ->
    Some t.Engine.analytics
  | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _ -> Some infinity
  | Engine.Unsupported -> None

type config = {
  timeout_s : float;
  sizes : Spec.size list;
  seed : int64;
  progress : (string -> unit) option;
}

let default_config =
  { timeout_s = 60.; sizes = Spec.all_tested; seed = 0x6E0BA5EL; progress = None }

let quick_config =
  { timeout_s = 10.; sizes = [ Spec.Small ]; seed = 0x6E0BA5EL; progress = None }

(* Progress lines go through the Obs log channel: timestamped for the
   configured sink, and interleaved with spans when tracing is on. *)
let note config fmt =
  Printf.ksprintf
    (fun s -> Gb_obs.Obs.Log.line ?sink:config.progress s)
    fmt

let datasets config =
  List.map
    (fun size -> (size, Dataset.generate ~seed:config.seed (Spec.of_size size)))
    config.sizes

let single_node_engines =
  [
    Engine_r.engine;
    Engine_sql.postgres_r;
    Engine_madlib.engine;
    Engine_sql.colstore_r;
    Engine_sql.colstore_udf;
    Engine_scidb.engine;
    Engine_hadoop.engine;
  ]

let multi_node_engines ~nodes =
  [
    Engine_pbdr.engine ~nodes;
    Engine_scidb_mn.engine ~nodes;
    Engine_colstore_mn.pbdr ~nodes;
    Engine_colstore_mn.udf ~nodes;
    Engine_hadoop.engine_multinode ~nodes;
  ]

(* Global memory budget throttling concurrent cells. Sized from
   GENBASE_MEMORY_BUDGET_MB (default 4 GiB); a cell's reservation is a
   peak-working-set estimate from its expression matrix (engines copy,
   center and factorize it a handful of times) plus a fixed overhead for
   the relational stores. Oversized cells still run — alone. *)
let budget =
  lazy
    (let mb =
       match Sys.getenv_opt "GENBASE_MEMORY_BUDGET_MB" with
       | Some s -> ( match int_of_string_opt (String.trim s) with
         | Some n when n > 0 -> n
         | _ -> 4096)
       | None -> 4096
     in
     Gb_par.Budget.create ~bytes:(mb * 1024 * 1024))

let cell_bytes ds =
  let rows, cols = Gb_linalg.Mat.dims ds.Gb_datagen.Generate.expression in
  (rows * cols * 8 * 8) + (64 * 1024 * 1024)

let memory_budget () = Lazy.force budget

(* Grid cells are independent (engines share no mutable state; each cell
   regenerates its derived stores from the immutable dataset), so with
   more than one pool lane they run concurrently — kernels inside a cell
   then execute inline on that lane, trading kernel-level for cell-level
   parallelism. Tracing forces the sequential path: span marks, counter
   deltas and progress interleaving assume one cell at a time. Results
   keep grid order either way. *)
let run_grid config engines_of_nodes ~node_counts ~queries ~sizes =
  let data = datasets { config with sizes } in
  let specs =
    List.concat_map
      (fun (size, ds) ->
        List.concat_map
          (fun nodes ->
            List.concat_map
              (fun e -> List.map (fun q -> (size, ds, nodes, e, q)) queries)
              (engines_of_nodes nodes))
          node_counts)
      data
  in
  let run (size, ds, nodes, e, q) =
    let c = run_cell e ds q ~timeout_s:config.timeout_s in
    note config "%s | %s | %s | n=%d: %s" (Spec.label size) (Query.name q)
      c.engine nodes
      (Format.asprintf "%a" Engine.pp_outcome c.outcome);
    c
  in
  if Gb_par.Pool.jobs () > 1 && not (Gb_obs.Obs.enabled ()) then
    Gb_par.Pool.map_list
      (fun ((_, ds, _, _, _) as spec) ->
        Gb_par.Budget.with_reservation (Lazy.force budget)
          ~bytes:(cell_bytes ds)
          (fun () -> run spec))
      specs
  else List.map run specs

let single_node_cells config =
  run_grid config
    (fun _ -> single_node_engines)
    ~node_counts:[ 1 ] ~queries:Query.all ~sizes:config.sizes

let largest config =
  match List.rev config.sizes with [] -> Spec.Large | s :: _ -> s

let multi_node_cells config =
  run_grid config
    (fun nodes -> multi_node_engines ~nodes)
    ~node_counts:[ 1; 2; 4 ] ~queries:Query.all ~sizes:[ largest config ]

(* The coprocessor comparisons divide two measurements of the same kernel
   taken moments apart, so transient machine load shows up directly in the
   reported speedup. Interleave the host and device runs and keep each
   phase's minimum: both sides then sample the same load conditions. *)
let run_pair_interleaved ~iterations e_host e_phi ds q ~timeout_s =
  let run e = Engine.run e ds q ~timeout_s () in
  let merge a b =
    match (a, b) with
    | Engine.Completed (t1, p), Engine.Completed (t2, _) ->
      Engine.Completed
        ( {
            Engine.dm = Float.min t1.Engine.dm t2.Engine.dm;
            analytics = Float.min t1.Engine.analytics t2.Engine.analytics;
          },
          p )
    | Engine.Completed _, _ -> a
    | _, _ -> b
  in
  let host = ref (run e_host) and phi = ref (run e_phi) in
  for _ = 2 to iterations do
    host := merge !host (run e_host);
    phi := merge !phi (run e_phi)
  done;
  let cell e outcome =
    {
      engine = e.Engine.name;
      nodes = (match e.Engine.kind with `Single_node -> 1 | `Multi_node n -> n);
      query = q;
      size = ds.Gb_datagen.Generate.spec.Spec.size;
      outcome;
      breakdown = [];
      counters = [];
    }
  in
  [ cell e_host !host; cell e_phi !phi ]

let phi_queries =
  [ Query.Q3_biclustering; Query.Q4_svd; Query.Q2_covariance; Query.Q5_statistics ]

let phi_cells config =
  List.concat_map
    (fun (size, ds) ->
      List.concat_map
        (fun q ->
          let cells =
            run_pair_interleaved ~iterations:5 Engine_scidb.engine
              Engine_phi.engine ds q ~timeout_s:config.timeout_s
          in
          List.iter
            (fun c ->
              note config "%s | %s | %s: %s" (Spec.label size) (Query.name q)
                c.engine
                (Format.asprintf "%a" Engine.pp_outcome c.outcome))
            cells;
          cells)
        phi_queries)
    (datasets config)

let phi_mn_cells config =
  let size = largest config in
  let ds = Dataset.generate ~seed:config.seed (Spec.of_size size) in
  List.concat_map
    (fun nodes ->
      List.concat_map
        (fun q ->
          let cells =
            run_pair_interleaved ~iterations:5
              (Engine_scidb_mn.engine ~nodes)
              (Engine_scidb_mn.engine_phi ~nodes)
              ds q ~timeout_s:config.timeout_s
          in
          List.iter
            (fun c ->
              note config "%s | %s | %s | n=%d: %s" (Spec.label size)
                (Query.name q) c.engine nodes
                (Format.asprintf "%a" Engine.pp_outcome c.outcome))
            cells;
          cells)
        phi_queries)
    [ 1; 2; 4 ]

(* --- rendering --- *)

let sizes_of cells =
  List.sort_uniq compare (List.map (fun c -> c.size) cells)

let engines_of cells =
  List.fold_left
    (fun acc c -> if List.mem c.engine acc then acc else acc @ [ c.engine ])
    [] cells

let lookup cells ~engine ~query ~size ~nodes =
  List.find_opt
    (fun c ->
      c.engine = engine && c.query = query && c.size = size && c.nodes = nodes)
    cells

let chart_by_size cells ~title ~query ~value =
  let sizes = sizes_of cells in
  let series =
    List.map
      (fun engine ->
        ( engine,
          List.map
            (fun size ->
              match lookup cells ~engine ~query ~size ~nodes:1 with
              | None -> None
              | Some c -> value c)
            sizes ))
      (engines_of cells)
  in
  Render.series_chart ~title ~x_labels:(List.map Spec.label sizes) ~series

let chart_by_nodes cells ~title ~query ~value =
  let size = match sizes_of cells with [ s ] -> s | s :: _ -> s | [] -> Spec.Large in
  let node_counts = List.sort_uniq compare (List.map (fun c -> c.nodes) cells) in
  let series =
    List.map
      (fun engine ->
        ( engine,
          List.map
            (fun nodes ->
              match lookup cells ~engine ~query ~size ~nodes with
              | None -> None
              | Some c -> value c)
            node_counts ))
      (engines_of cells)
  in
  Render.series_chart ~title
    ~x_labels:(List.map string_of_int node_counts)
    ~series

let fig1_order =
  [
    (Query.Q1_regression, "Figure 1a: Linear Regression Query Performance");
    (Query.Q3_biclustering, "Figure 1b: Biclustering Query Performance");
    (Query.Q4_svd, "Figure 1c: SVD Query Performance");
    (Query.Q2_covariance, "Figure 1d: Covariance Query Performance");
    (Query.Q5_statistics, "Figure 1e: Statistics Query Performance");
  ]

let fig1 cells =
  List.map
    (fun (q, title) -> chart_by_size cells ~title ~query:q ~value:total_seconds)
    fig1_order

(* The paper notes the DM/analytics breakdown "is not available for
   Postgres", so Figure 2 omits the two Postgres configurations. *)
let fig2_filter cells =
  List.filter
    (fun c -> not (String.length c.engine >= 8 && String.sub c.engine 0 8 = "Postgres"))
    cells

let fig2 cells =
  let cells = fig2_filter cells in
  [
    chart_by_size cells
      ~title:"Figure 2a: Linear Regression Data Management Performance"
      ~query:Query.Q1_regression ~value:dm_seconds;
    chart_by_size cells
      ~title:"Figure 2b: Linear Regression Analytics Performance"
      ~query:Query.Q1_regression ~value:analytics_seconds;
  ]

let fig3_order =
  [
    (Query.Q1_regression, "Figure 3a: Linear Regression Query Performance, 30k x 40k Dataset");
    (Query.Q3_biclustering, "Figure 3b: Biclustering Query Performance, 30k x 40k Dataset");
    (Query.Q4_svd, "Figure 3c: SVD Query Performance, 30k x 40k Dataset");
    (Query.Q2_covariance, "Figure 3d: Covariance Query Performance, 30k x 40k Dataset");
    (Query.Q5_statistics, "Figure 3e: Statistics Query Performance, 30k x 40k Dataset");
  ]

let fig3 cells =
  List.map
    (fun (q, title) -> chart_by_nodes cells ~title ~query:q ~value:total_seconds)
    fig3_order

let fig4 cells =
  [
    chart_by_nodes cells
      ~title:
        "Figure 4a: Linear Regression Data Management Performance, 30k x 40k Dataset"
      ~query:Query.Q1_regression ~value:dm_seconds;
    chart_by_nodes cells
      ~title:
        "Figure 4b: Linear Regression Analytics Performance, 30k x 40k Dataset"
      ~query:Query.Q1_regression ~value:analytics_seconds;
  ]

let fig5_order =
  [
    (Query.Q3_biclustering, "Figure 5a: Biclustering Query Performance, SciDB v. SciDB + Xeon Phi");
    (Query.Q4_svd, "Figure 5b: SVD Query Performance, SciDB v. SciDB + Xeon Phi");
    (Query.Q2_covariance, "Figure 5c: Covariance Query Performance, SciDB v. SciDB + Xeon Phi");
    (Query.Q5_statistics, "Figure 5d: Statistics Query Performance, SciDB v. SciDB + Xeon Phi");
  ]

let fig5 cells =
  List.map
    (fun (q, title) -> chart_by_size cells ~title ~query:q ~value:total_seconds)
    fig5_order

let table1 cells =
  let size = match sizes_of cells with s :: _ -> s | [] -> Spec.Large in
  let node_counts =
    List.sort_uniq compare (List.map (fun c -> c.nodes) cells)
  in
  let speedup q nodes =
    let host =
      lookup cells ~engine:"SciDB" ~query:q ~size ~nodes
      |> Option.map analytics_seconds |> Option.join
    in
    let phi =
      lookup cells ~engine:"SciDB + Xeon Phi" ~query:q ~size ~nodes
      |> Option.map analytics_seconds |> Option.join
    in
    match (host, phi) with
    | Some h, Some p when p > 0. && Float.is_finite h && Float.is_finite p ->
      Printf.sprintf "%.2f" (h /. p)
    | _ -> "-"
  in
  let rows =
    List.map
      (fun (q, label) ->
        label :: List.map (fun n -> speedup q n) node_counts)
      [
        (Query.Q2_covariance, "Covariance");
        (Query.Q4_svd, "SVD");
        (Query.Q5_statistics, "Statistics");
        (Query.Q3_biclustering, "Biclustering");
      ]
  in
  Printf.sprintf
    "Table 1: Analytics speedup of the Xeon Phi coprocessor-based system\n%s"
    (Render.table
       ~headers:
         ("Benchmarks"
         :: List.map (fun n -> Printf.sprintf "%d node%s" n (if n = 1 then "" else "s")) node_counts)
       ~rows)

(* --- chaos: fault-injected grids --- *)

type chaos = {
  fault_seed : int64;
  crash_p : float;
  straggler_p : float;
  straggler_factor : float;
  oom_p : float;
  drop_p : float;
  delay_p : float;
  delay_s : float;
  task_fail_p : float;
}

let default_chaos =
  {
    fault_seed = 0xC7A05L;
    crash_p = 0.015;
    straggler_p = 0.05;
    straggler_factor = 4.;
    oom_p = 0.02;
    drop_p = 0.02;
    delay_p = 0.05;
    delay_s = 0.05;
    task_fail_p = 0.08;
  }

(* Each (engine, node count) pair gets its own derived seed so the same
   chaos config exercises different fault placements across the grid while
   staying a pure function of [fault_seed]. *)
let chaos_plan chaos ~engine ~nodes =
  let seed =
    Int64.add chaos.fault_seed
      (Int64.of_int (Hashtbl.hash (engine, nodes) land 0xFFFFFF))
  in
  Gb_fault.Fault.scatter ~seed ~nodes ~supersteps:64 ~crash_p:chaos.crash_p
    ~straggler_p:chaos.straggler_p ~straggler_factor:chaos.straggler_factor
    ~oom_p:chaos.oom_p ~comm_ops:512 ~drop_p:chaos.drop_p
    ~delay_p:chaos.delay_p ~delay_s:chaos.delay_s ~jobs:24
    ~task_fail_p:chaos.task_fail_p ()

let chaos_engines chaos ~nodes =
  let plan name = chaos_plan chaos ~engine:name ~nodes in
  [
    Engine_pbdr.faulty ~fault:(plan "pbdR") ~nodes;
    Engine_scidb_mn.faulty ~fault:(plan "SciDB") ~nodes;
    Engine_colstore_mn.pbdr_faulty ~fault:(plan "Column store + pbdR") ~nodes;
    Engine_colstore_mn.udf_faulty ~fault:(plan "Column store + UDFs") ~nodes;
    Engine_hadoop.multinode_faulty ~fault:(plan "Hadoop") ~nodes;
  ]

let chaos_cells ?(chaos = default_chaos) config =
  run_grid config
    (fun nodes -> chaos_engines chaos ~nodes)
    ~node_counts:[ 1; 2; 4 ] ~queries:Query.all ~sizes:[ largest config ]

let availability cells =
  let sum_recovery cs =
    List.fold_left
      (fun acc c ->
        match Engine.recovery_of c.outcome with
        | None -> acc
        | Some r ->
          {
            Engine.retries = acc.Engine.retries + r.Engine.retries;
            recovered_nodes = acc.Engine.recovered_nodes + r.Engine.recovered_nodes;
            speculative = acc.Engine.speculative + r.Engine.speculative;
            wasted_s = acc.Engine.wasted_s +. r.Engine.wasted_s;
          })
      Engine.no_recovery cs
  in
  let rows =
    List.map
      (fun engine ->
        let cs = List.filter (fun c -> c.engine = engine) cells in
        let count p = List.length (List.filter (fun c -> p c.outcome) cs) in
        let ok = count (function Engine.Completed _ -> true | _ -> false) in
        let degraded =
          count (function Engine.Degraded _ -> true | _ -> false)
        in
        let failed =
          count (function
            | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _ ->
              true
            | _ -> false)
        in
        let attempted = ok + degraded + failed in
        let avail =
          if attempted = 0 then "-"
          else
            Printf.sprintf "%.1f%%"
              (100. *. float_of_int (ok + degraded) /. float_of_int attempted)
        in
        let r = sum_recovery cs in
        [
          engine;
          string_of_int ok;
          string_of_int degraded;
          string_of_int failed;
          avail;
          string_of_int r.Engine.retries;
          string_of_int r.Engine.recovered_nodes;
          string_of_int r.Engine.speculative;
          Printf.sprintf "%.2f" r.Engine.wasted_s;
        ])
      (engines_of cells)
  in
  Printf.sprintf "Availability under fault injection\n%s"
    (Render.table
       ~headers:
         [
           "Engine"; "ok"; "degraded"; "failed"; "avail";
           "retries"; "nodes recovered"; "speculative"; "wasted (s)";
         ]
       ~rows)

(* --- structured bench records ---

   One {!Gb_obs.Bench_json.record} per measurable cell, keyed so two
   runs of the same grid compare cell-for-cell. A cell is a single kept
   measurement, so the record's statistics collapse to that one sample;
   the DM/analytics split and any observability counter deltas ride
   along as counters. Failed cells (infinite totals) carry no magnitude
   to diff and are dropped, as are [Unsupported] ones. *)
let bench_records cells =
  List.filter_map
    (fun c ->
      match total_seconds c with
      | None -> None
      | Some total ->
        let phase name v =
          match v with
          | Some x when Float.is_finite x -> [ (name, x) ]
          | _ -> []
        in
        let counters =
          phase "dm_s" (dm_seconds c)
          @ phase "analytics_s" (analytics_seconds c)
          @ c.counters
        in
        Gb_obs.Bench_json.make
          ~name:(Printf.sprintf "cell-n%d" c.nodes)
          ~engine:c.engine
          ~query:(Query.name c.query)
          ~size:(Spec.label c.size)
          ~unit_:"s" ~counters [ total ])
    cells

(* Per-engine availability as higher-is-better percentage records, the
   diffable form of the {!availability} table (chaos grids). *)
let availability_records cells =
  List.filter_map
    (fun engine ->
      let cs = List.filter (fun c -> c.engine = engine) cells in
      let count p = List.length (List.filter (fun c -> p c.outcome) cs) in
      let ok = count (function Engine.Completed _ -> true | _ -> false) in
      let degraded = count (function Engine.Degraded _ -> true | _ -> false) in
      let failed =
        count (function
          | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _ -> true
          | _ -> false)
      in
      let attempted = ok + degraded + failed in
      if attempted = 0 then None
      else
        Gb_obs.Bench_json.make ~name:"availability" ~engine ~unit_:"pct"
          ~better:Gb_obs.Bench_json.Higher
          [ 100. *. float_of_int (ok + degraded) /. float_of_int attempted ])
    (engines_of cells)

(* Counter columns are the sorted union of counter names seen across the
   grid, so the header order is stable for a given cell set regardless of
   which engine ran first. *)
let counter_columns cells =
  List.concat_map (fun c -> List.map fst c.counters) cells
  |> List.sort_uniq compare

let to_csv cells =
  let ctr_cols = counter_columns cells in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "engine,nodes,query,size,status,payload,dm_s,analytics_s,total_s,retries,\
     recovered_nodes,speculative,wasted_s";
  List.iter (fun name -> Buffer.add_string buf ("," ^ name)) ctr_cols;
  Buffer.add_string buf ",top_spans\n";
  List.iter
    (fun c ->
      let timed status t r =
        ( status,
          Printf.sprintf "%.6f" t.Engine.dm,
          Printf.sprintf "%.6f" t.Engine.analytics,
          Printf.sprintf "%.6f" (Engine.total t),
          string_of_int r.Engine.retries,
          string_of_int r.Engine.recovered_nodes,
          string_of_int r.Engine.speculative,
          Printf.sprintf "%.6f" r.Engine.wasted_s )
      in
      let status, dm, an, total, retries, recovered, spec, wasted =
        match c.outcome with
        | Engine.Completed (t, _) -> timed "ok" t Engine.no_recovery
        | Engine.Degraded (t, r, _) -> timed "degraded" t r
        | Engine.Timed_out -> ("timeout", "", "", "", "", "", "", "")
        | Engine.Out_of_memory -> ("oom", "", "", "", "", "", "", "")
        | Engine.Errored _ -> ("error", "", "", "", "", "", "", "")
        | Engine.Unsupported -> ("unsupported", "", "", "", "", "", "", "")
      in
      let payload =
        match c.outcome with
        | Engine.Completed (_, p) | Engine.Degraded (_, _, p) ->
          Engine.payload_kind p
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s" c.engine
           c.nodes (Query.name c.query) (Spec.label c.size) status payload dm
           an total retries recovered spec wasted);
      List.iter
        (fun name ->
          match List.assoc_opt name c.counters with
          | Some v -> Buffer.add_string buf (Printf.sprintf ",%.6g" v)
          | None -> Buffer.add_char buf ',')
        ctr_cols;
      let tops =
        List.map
          (fun (name, s) -> Printf.sprintf "%s=%.6f" name s)
          c.breakdown
        |> String.concat ";"
      in
      Buffer.add_string buf ("," ^ tops ^ "\n"))
    cells;
  Buffer.contents buf
