(** Benchmark harness: runs (engine x query x data set) grids, applies the
    cut-off rule ("we cut off all computation after two hours … we treat
    memory allocation failure and excessive computation length as
    'infinite' results"), and renders each of the paper's figures and
    tables as a text chart. *)

type cell = {
  engine : string;
  nodes : int;
  query : Query.t;
  size : Gb_datagen.Spec.size;
  outcome : Engine.outcome;
  breakdown : (string * float) list;
      (** top span names by total duration for this cell — empty unless
          tracing was enabled ({!Gb_obs.Obs.set_enabled}) during the run *)
  counters : (string * float) list;
      (** counter deltas attributable to this cell — empty unless tracing
          was enabled *)
}

val run_cell : Engine.t -> Dataset.t -> Query.t -> timeout_s:float -> cell
(** Run one (engine, query, data set) cell. When tracing is enabled the
    run is wrapped in a ["cell:<engine>/<query>/<size>"] root span whose
    duration equals the engine-reported total (matching
    {!total_seconds}), and the cell carries its span breakdown and
    counter deltas. *)

val total_seconds : cell -> float option
(** [Some total] for a (possibly degraded) completion; [Some infinity]
    for timeout, memory failure, or an [Errored] cell — all three are the
    paper's "infinite" results, and an execution error is charged like a
    crash, not excused; [None] only when the engine lacks the
    functionality ([Unsupported]). The conformance matrix
    ({!Gb_conformance.Matrix}) mirrors this split: [Errored] cells
    classify as [Engine_failed] (nothing verified), never as conforming. *)

val dm_seconds : cell -> float option
val analytics_seconds : cell -> float option

type config = {
  timeout_s : float; (** the scaled two-hour window *)
  sizes : Gb_datagen.Spec.size list;
  seed : int64;
  progress : (string -> unit) option; (** per-cell progress callback *)
}

val default_config : config

val quick_config : config
(** Small size only and a short timeout, for tests and demos. *)

val memory_budget : unit -> Gb_par.Budget.t
(** The process-wide byte budget throttling concurrent cells, sized from
    [GENBASE_MEMORY_BUDGET_MB] (default 4 GiB). Shared with the serving
    layer so interactive queries and batch grids are admitted against
    the same capacity. *)

val cell_bytes : Dataset.t -> int
(** Peak-working-set estimate charged against {!memory_budget} for one
    cell over this data set. *)

val single_node_engines : Engine.t list
val multi_node_engines : nodes:int -> Engine.t list

(** {1 Experiment grids} — each runs its engines and returns raw cells.

    When the Domain pool ({!Gb_par.Pool}) has more than one lane and
    tracing is disabled, grid cells run concurrently on the pool under a
    global memory budget (GENBASE_MEMORY_BUDGET_MB, default 4096);
    results keep grid order. Tracing forces the sequential path so span
    attribution and counter deltas keep single-cell semantics. *)

val single_node_cells : config -> cell list
(** Everything Figures 1 and 2 need: 7 engines x 5 queries x sizes. *)

val multi_node_cells : config -> cell list
(** Figures 3/4: 5 multi-node systems x 5 queries x {1,2,4} nodes on the
    largest configured size. *)

val phi_cells : config -> cell list
(** Figure 5: SciDB vs SciDB+Phi x 4 queries x sizes. *)

val phi_mn_cells : config -> cell list
(** Table 1: SciDB vs SciDB+Phi x 4 queries x {1,2,4} nodes, largest
    size. *)

(** {1 Chaos} — the same grids under deterministic fault injection. *)

type chaos = {
  fault_seed : int64;  (** every fault placement derives from this *)
  crash_p : float;  (** per (node, superstep) crash probability *)
  straggler_p : float;
  straggler_factor : float;
  oom_p : float;
  drop_p : float;  (** per communication-op message loss *)
  delay_p : float;
  delay_s : float;
  task_fail_p : float;  (** per MapReduce job transient task failure *)
}

val default_chaos : chaos

val chaos_plan : chaos -> engine:string -> nodes:int -> Gb_fault.Fault.plan
(** The fault plan a chaos grid arms for one (engine, node count) cell
    group: [fault_seed] perturbed by a hash of the pair, so placements
    differ across the grid but are a pure function of the config. *)

val chaos_engines : chaos -> nodes:int -> Engine.t list
(** {!multi_node_engines} with each engine armed with its chaos plan. *)

val chaos_cells : ?chaos:chaos -> config -> cell list
(** The {!multi_node_cells} grid under fault injection: 5 systems x 5
    queries x {1,2,4} nodes, largest configured size. Cells complete
    ([Completed] when no fault landed, [Degraded] when recovery absorbed
    some), or fail in isolation ([Timed_out] / [Out_of_memory] /
    [Errored]) — never by raising. *)

val availability : cell list -> string
(** Per-engine summary table of a (chaos) grid: completed / degraded /
    failed cell counts, availability percentage, and aggregate recovery
    work (retries, node recoveries, speculative re-executions, wasted
    simulated seconds). *)

val bench_records : cell list -> Gb_obs.Bench_json.record list
(** One structured bench record per measurable cell, keyed
    (["cell-n<nodes>"], engine, query, size) so two runs of the same
    grid diff cell-for-cell with [genbase bench-diff]. DM/analytics
    splits and the cell's observability counter deltas ride along as
    record counters. Failed (infinite) and [Unsupported] cells are
    dropped. *)

val availability_records : cell list -> Gb_obs.Bench_json.record list
(** Per-engine availability percentages of a (chaos) grid as
    higher-is-better records — the diffable form of {!availability}. *)

(** {1 Rendering} — turn cells into the paper's figures. *)

val fig1 : cell list -> string list
val fig2 : cell list -> string list
val fig3 : cell list -> string list
val fig4 : cell list -> string list
val fig5 : cell list -> string list
val table1 : cell list -> string

val to_csv : cell list -> string
(** Machine-readable dump of a cell grid: one line per cell with engine,
    nodes, query, size, status, the payload kind, the phase timings, the
    recovery counters (retries, recovered_nodes, speculative, wasted_s —
    zeros for clean completions, blank for cells with no timing), one
    column per Obs counter observed anywhere in the grid (sorted by name
    for a stable header order), and a [top_spans] breakdown column
    ([name=seconds] pairs separated by [;]). Counter and breakdown cells
    are blank when tracing was disabled. *)
