(** Configuration 7: Hadoop — Hive for the data management, Mahout for the
    analytics. Runs only the queries Mahout can express (regression,
    covariance, SVD). Every step is MapReduce jobs over text records: job
    launch overhead plus no tuned linear algebra, hence "between one and
    two orders of magnitude worse performance than the best system". *)

val engine : Engine.t

val engine_multinode : nodes:int -> Engine.t
(** The same stack with maps/reduces spread over [nodes] (parallel
    efficiency < 1) and shuffle traffic charged to the interconnect. *)

val multinode_faulty : fault:Gb_fault.Fault.plan -> nodes:int -> Engine.t
(** [engine_multinode] with a deterministic fault plan armed on the
    MapReduce runtime: [Task_fail] events cost Hadoop-style task
    re-attempts; jobs whose failures outlast the attempt budget surface
    as [Engine.Errored]. *)
