module Mat = Gb_linalg.Mat
module G = Gb_datagen.Generate
module Cluster = Gb_cluster.Cluster
module Partition = Gb_cluster.Partition
module Par = Gb_cluster.Par_linalg

type node_data = {
  block_start : int;
  expr : Mat.t; (* local block of patient rows *)
  patients : G.patient array; (* local patients *)
}

let partition (ds : Dataset.t) nodes =
  let p, _ = Mat.dims ds.expression in
  Partition.block_rows ~rows:p ~nodes
  |> Array.map (fun (start, len) ->
         {
           block_start = start;
           expr =
             Mat.init len (snd (Mat.dims ds.expression)) (fun i j ->
                 Mat.unsafe_get ds.expression (start + i) j);
           patients = Array.sub ds.patients start len;
         })

let mat_bytes m =
  let r, c = Mat.dims m in
  8 * r * c

let run ?fault ~nodes ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:(2. *. timeout_s) in
  let cluster = Cluster.create ~nodes () in
  Cluster.set_deadline cluster timeout_s;
  Qcommon.arm_cluster cluster fault;
  let data = partition ds nodes in
  let phase name f =
    let t0 = Cluster.elapsed cluster in
    let gc = Gb_obs.Profile.start () in
    let r = f () in
    Gb_util.Deadline.check dl;
    let t1 = Cluster.elapsed cluster in
    Gb_obs.Obs.Span.emit ~cat:"phase"
      ~attrs:(Gb_obs.Profile.delta_attrs gc)
      ~name ~t0 ~t1 ();
    (r, t1 -. t0)
  in
  let n_genes = Array.length ds.G.genes in
  let go_terms = ds.G.spec.Gb_datagen.Spec.go_terms in
  match query with
  | Query.Q1_regression ->
    let (parts, ys, _gene_ids), dm =
      phase "dm" (fun () ->
          let gene_ids =
            Qcommon.genes_with_func_below ds params.func_threshold
          in
          let parts =
            Cluster.superstep cluster (fun node ->
                Mat.sub_cols data.(node).expr gene_ids)
          in
          let ys =
            Cluster.superstep cluster (fun node ->
                Array.map
                  (fun (p : G.patient) -> p.drug_response)
                  data.(node).patients)
          in
          (parts, ys, gene_ids))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let beta = Par.regression cluster parts ys in
          let r2 = Par.r_squared cluster parts ys ~beta in
          Engine.Regression
            {
              intercept = beta.(0);
              coefficients = Array.sub beta 1 (Array.length beta - 1);
              r2;
            })
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q2_covariance ->
    let parts, dm0 =
      phase "dm" (fun () ->
          Cluster.superstep cluster (fun node ->
              let d = data.(node) in
              let ids =
                Array.to_list d.patients
                |> List.filteri (fun _ (p : G.patient) ->
                       p.disease_id = params.disease_id)
                |> List.map (fun (p : G.patient) -> p.patient_id - d.block_start)
                |> Array.of_list
              in
              Mat.sub_rows d.expr ids))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let c = Par.covariance cluster parts in
          (* The full covariance matrix lands on the head node, which
             thresholds the pairs. *)
          let pairs = ref [] in
          let _ =
            Cluster.superstep cluster (fun node ->
                if node = 0 then
                  pairs :=
                    Gb_linalg.Covariance.top_fraction c params.cov_top_fraction)
          in
          Engine.Cov_pairs { n_genes; top_pairs = !pairs })
    in
    (* Step 4 join against the (replicated) gene metadata on the head. *)
    let _meta, dm1 =
      phase "dm:metadata" (fun () ->
          Cluster.superstep cluster (fun node ->
              if node = 0 then
                match payload with
                | Engine.Cov_pairs p ->
                  List.iter
                    (fun (g1, _, _) -> ignore ds.G.genes.(g1).G.func)
                    p.top_pairs
                | _ -> ()))
    in
    Engine.completed { dm = dm0 +. dm1; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q3_biclustering ->
    let head_matrix, dm =
      phase "dm" (fun () ->
          let parts =
            Cluster.superstep cluster (fun node ->
                let d = data.(node) in
                let ids =
                  Array.to_list d.patients
                  |> List.filter (fun (p : G.patient) ->
                         p.age < params.max_age && p.gender = params.gender)
                  |> List.map (fun (p : G.patient) ->
                         p.patient_id - d.block_start)
                  |> Array.of_list
                in
                Mat.sub_rows d.expr ids)
          in
          let total_bytes =
            Array.fold_left (fun acc p -> acc + mat_bytes p) 0 parts
          in
          Cluster.gather cluster ~bytes_per_node:(total_bytes / nodes);
          Partition.concat_rows parts)
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let out = ref (Engine.Biclusters { clusters = [] }) in
          let _ =
            Cluster.superstep cluster (fun node ->
                if node = 0 then out := Qcommon.biclusters_of head_matrix)
          in
          !out)
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q4_svd ->
    let parts, dm =
      phase "dm" (fun () ->
          let gene_ids =
            Qcommon.genes_with_func_below ds params.func_threshold
          in
          Cluster.superstep cluster (fun node ->
              Mat.sub_cols data.(node).expr gene_ids))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let eigs = Par.lanczos_eigs cluster ~k:params.svd_k parts in
          Engine.Singular_values
            (Array.map (fun e -> sqrt (Float.max 0. e)) eigs))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q5_statistics ->
    let scores, dm =
      phase "dm" (fun () ->
          let sample = Qcommon.sampled_patients ds params.sample_fraction in
          let k = Array.length sample in
          let partials =
            Cluster.superstep cluster (fun node ->
                let d = data.(node) in
                let sums = Array.make (n_genes + 1) 0. in
                Array.iteri
                  (fun local (p : G.patient) ->
                    if p.patient_id < k then begin
                      for j = 0 to n_genes - 1 do
                        sums.(j) <- sums.(j) +. Mat.unsafe_get d.expr local j
                      done;
                      sums.(n_genes) <- sums.(n_genes) +. 1.
                    end)
                  d.patients;
                sums)
          in
          let t = Cluster.allreduce_sum cluster partials in
          let count = Float.max 1. t.(n_genes) in
          Array.init n_genes (fun j -> t.(j) /. count))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let out = ref (Engine.Enrichment []) in
          let _ =
            Cluster.superstep cluster (fun node ->
                if node = 0 then
                  out :=
                    Qcommon.enrichment_of ~n_genes ~go_pairs:ds.G.go ~go_terms
                      ~p_threshold:params.p_threshold ~scores)
          in
          !out)
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q6_overlap ->
    (* Shuffle-by-genomic-bin: every node receives the variant and gene
       intervals touching its bin-aligned genome slice (one shuffle of
       the two small interval tables), sweeps locally, and the head
       gathers the per-node pair lists. *)
    let (vivs, givs, spans), dm =
      phase "dm" (fun () ->
          let vivs = Qcommon.variant_ivs ds and givs = Qcommon.gene_ivs ds in
          let spans =
            Qcommon.overlap_node_spans
              ~bin_width:Gb_util.Ranges.default_bin_width ~nodes
              ~axis_end:(Qcommon.overlap_axis_end vivs givs)
          in
          Cluster.shuffle cluster
            ~total_bytes:(24 * (Array.length vivs + Array.length givs));
          (vivs, givs, spans))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let per_node =
            Cluster.superstep cluster (fun node ->
                Qcommon.overlap_pairs_in_span
                  ~min_overlap:params.min_overlap_bp ~span:spans.(node) vivs
                  givs)
          in
          let total =
            Array.fold_left (fun acc l -> acc + List.length l) 0 per_node
          in
          Cluster.gather cluster ~bytes_per_node:(24 * total / nodes);
          Qcommon.overlaps_of ~n_variants:(Array.length vivs)
            ~n_genes:(Array.length givs)
            (List.concat (Array.to_list per_node)))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload

let make ~fault ~nodes =
  {
    Engine.name = "pbdR";
    kind = `Multi_node nodes;
    supports = (fun _ -> true);
    load = (fun ds q ~params ~timeout_s -> run ?fault ~nodes ds q ~params ~timeout_s);
  }

let engine ~nodes = make ~fault:None ~nodes
let faulty ~fault ~nodes = make ~fault:(Some fault) ~nodes
