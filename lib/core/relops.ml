open Gb_relational
module Mat = Gb_linalg.Mat

type db = {
  scan : string -> string list -> Ops.rel;
  row_count : string -> int;
  check : unit -> unit;
}

let table_schema = function
  | "microarray" -> Dataset.microarray_schema
  | "patients" -> Dataset.patients_schema
  | "genes" -> Dataset.genes_schema
  | "go" -> Dataset.go_schema
  | "variants" -> Dataset.variants_schema
  | t -> invalid_arg ("Relops: unknown table " ^ t)

let catalog db =
  {
    Plan.scan =
      (fun t cols ->
        Ops.guard ~trace:("scan:" ^ t) db.check (db.scan t cols));
    schema_of = table_schema;
    row_count = db.row_count;
  }

let guarded db table cols =
  Ops.guard ~trace:("scan:" ^ table) db.check (db.scan table cols)

(* Join selected genes (small) against the microarray, keeping
   (patient_id, gene_id, value); expressed as a logical plan so the
   optimizer's pushdown / pruning / build-side choice applies. *)
let micro_join_genes db pred =
  Plan.execute (catalog db)
    (Plan.Project
       ( [ "patient_id"; "gene_id"; "value" ],
         Plan.Filter
           ( pred,
             Plan.Join
               {
                 left = Plan.Scan ("microarray", []);
                 right = Plan.Scan ("genes", []);
                 on = [ ("gene_id", "gene_id") ];
               } ) ))

let pivot_triples rel =
  Gb_obs.Profile.with_ ~cat:"op" ~name:"pivot" (fun () ->
      Pivot.of_triples ~row_col:"patient_id" ~col_col:"gene_id"
        ~value_col:"value" rel)

let q1_dm db (params : Query.params) =
  let joined =
    micro_join_genes db Expr.(col "func" <% int params.func_threshold)
  in
  let piv = pivot_triples joined in
  (* Project the drug response and align it with the pivot's row order. *)
  let resp = Hashtbl.create 1024 in
  let patients =
    Ops.traced ~name:"scan:patients"
      (db.scan "patients" [ "patient_id"; "drug_response" ])
  in
  let pi = Schema.index patients.Ops.schema "patient_id" in
  let di = Schema.index patients.Ops.schema "drug_response" in
  Seq.iter
    (fun row ->
      Hashtbl.replace resp (Value.to_int row.(pi)) (Value.to_float row.(di)))
    patients.Ops.rows;
  let y =
    Array.map (fun pid -> Hashtbl.find resp pid) piv.Pivot.row_ids
  in
  (piv.Pivot.matrix, y, piv.Pivot.col_ids)

let micro_join_patients db pred _cols_needed =
  Plan.execute (catalog db)
    (Plan.Project
       ( [ "patient_id"; "gene_id"; "value" ],
         Plan.Filter
           ( pred,
             Plan.Join
               {
                 left = Plan.Scan ("microarray", []);
                 right = Plan.Scan ("patients", []);
                 on = [ ("patient_id", "patient_id") ];
               } ) ))

let q2_dm db (params : Query.params) =
  let joined =
    micro_join_patients db
      Expr.(col "disease_id" =% int params.disease_id)
      [ "patient_id"; "disease_id" ]
  in
  let piv = pivot_triples joined in
  (piv.Pivot.matrix, piv.Pivot.col_ids)

let q2_join_metadata db pairs =
  let pair_schema =
    Schema.make
      [ ("g1", Value.TInt); ("g2", Value.TInt); ("cov", Value.TFloat) ]
  in
  let pair_rel =
    Ops.of_list pair_schema
      (List.map
         (fun (a, b, v) -> [| Value.Int a; Value.Int b; Value.Float v |])
         pairs)
  in
  let genes =
    db.scan "genes" [ "gene_id"; "target"; "position"; "length"; "func" ]
  in
  let joined = Ops.hash_join ~on:[ ("g1", "gene_id") ] pair_rel genes in
  Ops.count (Ops.guard db.check joined)

let q3_dm db (params : Query.params) =
  let joined =
    micro_join_patients db
      Expr.(
        col "age" <% int params.max_age &&% (col "gender" =% int params.gender))
      [ "patient_id"; "age"; "gender" ]
  in
  (pivot_triples joined).Pivot.matrix

let q4_dm db (params : Query.params) =
  let joined =
    micro_join_genes db Expr.(col "func" <% int params.func_threshold)
  in
  let piv = pivot_triples joined in
  (piv.Pivot.matrix, piv.Pivot.col_ids)

(* Q6: overlap-join variant intervals against gene intervals through the
   volcano planner, so the stores execute the Interval_join node (and
   EXPLAIN ANALYZE can show its est-vs-actual overlap count).  The
   sweep's output order — ascending (variant row, gene row) over
   id-ordered scans — is already canonical. *)
let q6_plan (params : Query.params) =
  Plan.Interval_join
    {
      left = Plan.Scan ("variants", []);
      right = Plan.Scan ("genes", []);
      left_span = ("vstart", "vlen");
      right_span = ("position", "length");
      min_overlap = params.min_overlap_bp;
    }

let q6_dm db (params : Query.params) =
  let rel = Plan.execute (catalog db) (q6_plan params) in
  let vi = Schema.index rel.Ops.schema "variant_id" in
  let gi = Schema.index rel.Ops.schema "gene_id" in
  let oi = Schema.index rel.Ops.schema "overlap_len" in
  let pairs = ref [] in
  Seq.iter
    (fun row ->
      pairs :=
        (Value.to_int row.(vi), Value.to_int row.(gi), Value.to_int row.(oi))
        :: !pairs)
    rel.Ops.rows;
  List.rev !pairs

let q5_dm db (params : Query.params) ~n_patients =
  let k =
    max 2
      (int_of_float
         (Float.round (params.sample_fraction *. float_of_int n_patients)))
  in
  let joined =
    micro_join_patients db
      Expr.(col "patient_id" <% int k)
      [ "patient_id" ]
  in
  let means =
    Ops.traced ~name:"aggregate"
      (Ops.aggregate ~group_by:[ "gene_id" ]
         ~aggs:[ ("score", Ops.Avg "value") ]
         joined)
  in
  let pairs_tbl = Hashtbl.create 1024 in
  let gi = Schema.index means.Ops.schema "gene_id" in
  let si = Schema.index means.Ops.schema "score" in
  Seq.iter
    (fun row ->
      Hashtbl.replace pairs_tbl (Value.to_int row.(gi)) (Value.to_float row.(si)))
    means.Ops.rows;
  let max_gene = Hashtbl.fold (fun g _ acc -> max g acc) pairs_tbl (-1) in
  let scores =
    Array.init (max_gene + 1) (fun g ->
        try Hashtbl.find pairs_tbl g with Not_found -> 0.)
  in
  let go = guarded db "go" [ "gene_id"; "go_id" ] in
  let ggi = Schema.index go.Ops.schema "gene_id" in
  let tti = Schema.index go.Ops.schema "go_id" in
  let go_pairs = ref [] in
  Seq.iter
    (fun row ->
      go_pairs := (Value.to_int row.(ggi), Value.to_int row.(tti)) :: !go_pairs)
    go.Ops.rows;
  (scores, Array.of_list (List.rev !go_pairs))
