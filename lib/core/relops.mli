(** The data-management phase of each query as relational plans, shared by
    every SQL-family engine (row store and column store). An engine
    provides a scan function; plans compose filters, hash joins,
    aggregation and the table→matrix pivot on top. *)

open Gb_relational

type db = {
  scan : string -> string list -> Ops.rel;
      (** [scan table cols] where table ∈ microarray | patients | genes |
          go | variants. A row store decodes whole tuples and projects; a
          column store reads only the requested columns. *)
  row_count : string -> int; (** catalog statistics for the optimizer *)
  check : unit -> unit; (** cooperative timeout hook *)
}

val catalog : db -> Plan.catalog
(** The planner's view of an engine's storage: scans plus schema/statistics
    from the benchmark's fixed schemas. *)

val table_schema : string -> Schema.t

val q1_dm : db -> Query.params -> Gb_linalg.Mat.t * float array * int array
(** Select genes by function, join with microarray, join drug response,
    pivot: returns (patients x selected-genes matrix, response vector,
    selected gene ids). *)

val q2_dm : db -> Query.params -> Gb_linalg.Mat.t * int array
(** Select patients by disease, join, pivot: (patients x all-genes matrix,
    gene ids). *)

val q2_join_metadata : db -> (int * int * float) list -> int
(** Step 4: join the thresholded covariance pairs back to the gene
    metadata table; returns the joined row count. *)

val q3_dm : db -> Query.params -> Gb_linalg.Mat.t
val q4_dm : db -> Query.params -> Gb_linalg.Mat.t * int array

val q5_dm : db -> Query.params -> n_patients:int -> float array * (int * int) array
(** Sample patients, join with microarray, aggregate mean expression per
    gene (the ranking input), and scan the GO table: (per-gene scores,
    go pairs). *)

val q6_plan : Query.params -> Plan.t
(** The logical overlap-join plan (variants x genes through
    {!Plan.Interval_join}) — also what [genbase explain] renders. *)

val q6_dm : db -> Query.params -> (int * int * int) list
(** Execute the Q6 plan: canonical ascending (variant_id, gene_id,
    overlap_len) pairs. *)
