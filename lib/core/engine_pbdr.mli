(** pbdR: R extended to a cluster, calling ScaLAPACK-style parallel
    kernels. Data is evenly block-row partitioned across nodes (as the
    paper configured it); data management combines local filters/joins
    with MPI-style exchanges; analytics use the parallel kernels, which is
    why pbdR scales best among the multi-node systems. *)

val engine : nodes:int -> Engine.t

val faulty : fault:Gb_fault.Fault.plan -> nodes:int -> Engine.t
(** [engine] with a deterministic fault plan armed on the simulated
    cluster (checkpointing enabled, see [Qcommon.arm_cluster]); absorbed
    faults surface as [Engine.Degraded] outcomes. *)
