module Mat = Gb_linalg.Mat
module G = Gb_datagen.Generate
module Cluster = Gb_cluster.Cluster
module Partition = Gb_cluster.Partition
module Par = Gb_cluster.Par_linalg
module Chunked = Gb_arraydb.Chunked
module Device = Gb_coproc.Device

type node_data = {
  block_start : int;
  expr : Chunked.t;
  patients : G.patient array;
}

let partition (ds : Dataset.t) nodes =
  let p, g = Mat.dims ds.expression in
  Partition.block_rows ~rows:p ~nodes
  |> Array.map (fun (start, len) ->
         {
           block_start = start;
           expr =
             Chunked.of_matrix
               (Mat.init len g (fun i j ->
                    Mat.unsafe_get ds.expression (start + i) j));
           patients = Array.sub ds.patients start len;
         })

let mat_bytes m =
  let r, c = Mat.dims m in
  8 * r * c

let run ?device ?fault ~nodes ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:(2. *. timeout_s) in
  let cluster = Cluster.create ~nodes () in
  Cluster.set_deadline cluster timeout_s;
  Qcommon.arm_cluster cluster fault;
  let data = partition ds nodes in
  let phase name f =
    let t0 = Cluster.elapsed cluster in
    let gc = Gb_obs.Profile.start () in
    let r = f () in
    Gb_util.Deadline.check dl;
    let t1 = Cluster.elapsed cluster in
    Gb_obs.Obs.Span.emit ~cat:"phase"
      ~attrs:(Gb_obs.Profile.delta_attrs gc)
      ~name ~t0 ~t1 ();
    (r, t1 -. t0)
  in
  (* Chunk realignment before analytics: going multi-node forces SciDB to
     redistribute the (whole) array so the selection's chunks align with
     the parallel kernels' layout. Chunks are rebuilt through storage, so
     the effective throughput is disk-bound, far below wire speed — this
     is the data movement the paper suspects makes SciDB slower on two
     nodes than on one. *)
  let redistribution_bps = 200e6 in
  let per_chunk_s = 0.0004 in
  let redistribute _parts =
    if nodes > 1 then begin
      let total_bytes =
        Array.fold_left
          (fun acc d -> acc + Chunked.byte_size d.expr)
          0 data
      in
      let chunks =
        Array.fold_left (fun acc d -> acc + Chunked.chunk_count d.expr) 0 data
      in
      Cluster.shuffle cluster ~total_bytes;
      Cluster.advance cluster
        ((float_of_int total_bytes /. redistribution_bps)
        +. (float_of_int chunks *. per_chunk_s))
    end
  in
  (* Analytics dispatch: plain cluster kernels, or per-node coprocessors
     (PCIe transfer charged per node; superstep compute scaled). *)
  let analytics_with cls ~bytes_per_node f =
    match device with
    | None -> f ()
    | Some dev ->
      Cluster.advance cluster (Device.transfer_time dev ~bytes:bytes_per_node);
      Cluster.set_compute_speedup cluster (dev.Device.speedup cls);
      Fun.protect
        ~finally:(fun () -> Cluster.set_compute_speedup cluster 1.)
        f
  in
  let n_genes = Array.length ds.G.genes in
  let go_terms = ds.G.spec.Gb_datagen.Spec.go_terms in
  let head_only f =
    let out = ref None in
    let _ =
      Cluster.superstep cluster (fun node ->
          if node = 0 then out := Some (f ()))
    in
    Option.get !out
  in
  match query with
  | Query.Q1_regression ->
    let (parts, ys), dm =
      phase "dm" (fun () ->
          let gene_ids =
            Qcommon.genes_with_func_below ds params.func_threshold
          in
          let parts =
            Cluster.superstep cluster (fun node ->
                Chunked.to_matrix (Chunked.select_cols data.(node).expr gene_ids))
          in
          let ys =
            Cluster.superstep cluster (fun node ->
                Array.map
                  (fun (p : G.patient) -> p.drug_response)
                  data.(node).patients)
          in
          redistribute parts;
          (parts, ys))
    in
    let bytes_per_node =
      Array.fold_left (fun acc p -> max acc (mat_bytes p)) 0 parts
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          analytics_with Device.Blas3 ~bytes_per_node (fun () ->
              let beta = Par.regression cluster parts ys in
              let r2 = Par.r_squared cluster parts ys ~beta in
              Engine.Regression
                {
                  intercept = beta.(0);
                  coefficients = Array.sub beta 1 (Array.length beta - 1);
                  r2;
                }))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q2_covariance ->
    let parts, dm0 =
      phase "dm" (fun () ->
          let parts =
            Cluster.superstep cluster (fun node ->
                let d = data.(node) in
                let local_ids =
                  Array.to_list d.patients
                  |> List.filter (fun (p : G.patient) ->
                         p.disease_id = params.disease_id)
                  |> List.map (fun (p : G.patient) ->
                         p.patient_id - d.block_start)
                  |> Array.of_list
                in
                Chunked.to_matrix (Chunked.select_rows d.expr local_ids))
          in
          redistribute parts;
          parts)
    in
    let bytes_per_node =
      Array.fold_left (fun acc p -> max acc (mat_bytes p)) 0 parts
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          analytics_with Device.Blas3 ~bytes_per_node (fun () ->
              let c = Par.covariance cluster parts in
              let pairs =
                head_only (fun () ->
                    Gb_linalg.Covariance.top_fraction c params.cov_top_fraction)
              in
              Engine.Cov_pairs { n_genes; top_pairs = pairs }))
    in
    let _meta, dm1 =
      phase "dm:metadata" (fun () ->
          head_only (fun () ->
              match payload with
              | Engine.Cov_pairs p ->
                List.iter
                  (fun (g1, _, _) -> ignore ds.G.genes.(g1).G.func)
                  p.top_pairs
              | _ -> ()))
    in
    Engine.completed { dm = dm0 +. dm1; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q3_biclustering ->
    let head_matrix, dm =
      phase "dm" (fun () ->
          let parts =
            Cluster.superstep cluster (fun node ->
                let d = data.(node) in
                let local_ids =
                  Array.to_list d.patients
                  |> List.filter (fun (p : G.patient) ->
                         p.age < params.max_age && p.gender = params.gender)
                  |> List.map (fun (p : G.patient) ->
                         p.patient_id - d.block_start)
                  |> Array.of_list
                in
                Chunked.to_matrix (Chunked.select_rows d.expr local_ids))
          in
          let total_bytes =
            Array.fold_left (fun acc p -> acc + mat_bytes p) 0 parts
          in
          Cluster.gather cluster ~bytes_per_node:(total_bytes / nodes);
          Partition.concat_rows parts)
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          analytics_with Device.Light ~bytes_per_node:(mat_bytes head_matrix)
            (fun () -> head_only (fun () -> Qcommon.biclusters_of head_matrix)))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q4_svd ->
    let parts, dm =
      phase "dm" (fun () ->
          let gene_ids =
            Qcommon.genes_with_func_below ds params.func_threshold
          in
          let parts =
            Cluster.superstep cluster (fun node ->
                Chunked.to_matrix (Chunked.select_cols data.(node).expr gene_ids))
          in
          redistribute parts;
          parts)
    in
    let bytes_per_node =
      Array.fold_left (fun acc p -> max acc (mat_bytes p)) 0 parts
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          analytics_with Device.Blas2 ~bytes_per_node (fun () ->
              let eigs = Par.lanczos_eigs cluster ~k:params.svd_k parts in
              Engine.Singular_values
                (Array.map (fun e -> sqrt (Float.max 0. e)) eigs)))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q5_statistics ->
    let scores, dm =
      phase "dm" (fun () ->
          let sample = Qcommon.sampled_patients ds params.sample_fraction in
          let k = Array.length sample in
          let partials =
            Cluster.superstep cluster (fun node ->
                let d = data.(node) in
                let sums = Array.make (n_genes + 1) 0. in
                Array.iteri
                  (fun local (p : G.patient) ->
                    if p.patient_id < k then begin
                      for j = 0 to n_genes - 1 do
                        sums.(j) <- sums.(j) +. Chunked.get d.expr local j
                      done;
                      sums.(n_genes) <- sums.(n_genes) +. 1.
                    end)
                  d.patients;
                sums)
          in
          let t = Cluster.allreduce_sum cluster partials in
          let count = Float.max 1. t.(n_genes) in
          Array.init n_genes (fun j -> t.(j) /. count))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          analytics_with Device.Stat
            ~bytes_per_node:(8 * n_genes)
            (fun () ->
              head_only (fun () ->
                  Qcommon.enrichment_of ~n_genes ~go_pairs:ds.G.go ~go_terms
                    ~p_threshold:params.p_threshold ~scores)))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q6_overlap ->
    (* Chunk-aligned intersection, multi-node: bins align with the array
       store's chunk width, each node owns a contiguous bin range, and
       the (small) interval tables are redistributed so every node holds
       the intervals its chunks touch. *)
    let (vivs, givs, spans), dm =
      phase "dm" (fun () ->
          let vivs = Qcommon.variant_ivs ds and givs = Qcommon.gene_ivs ds in
          let spans =
            Qcommon.overlap_node_spans
              ~bin_width:Gb_util.Ranges.default_bin_width ~nodes
              ~axis_end:(Qcommon.overlap_axis_end vivs givs)
          in
          Cluster.shuffle cluster
            ~total_bytes:(24 * (Array.length vivs + Array.length givs));
          (vivs, givs, spans))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          analytics_with Device.Stat
            ~bytes_per_node:
              (24 * (Array.length vivs + Array.length givs) / nodes)
            (fun () ->
              let per_node =
                Cluster.superstep cluster (fun node ->
                    Qcommon.overlap_pairs_in_span
                      ~min_overlap:params.min_overlap_bp ~span:spans.(node)
                      vivs givs)
              in
              let total =
                Array.fold_left (fun acc l -> acc + List.length l) 0 per_node
              in
              Cluster.gather cluster ~bytes_per_node:(24 * total / nodes);
              Qcommon.overlaps_of ~n_variants:(Array.length vivs)
                ~n_genes:(Array.length givs)
                (List.concat (Array.to_list per_node))))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload

let make ~fault ~nodes =
  {
    Engine.name = "SciDB";
    kind = `Multi_node nodes;
    supports = (fun _ -> true);
    load = (fun ds q ~params ~timeout_s -> run ?fault ~nodes ds q ~params ~timeout_s);
  }

let engine ~nodes = make ~fault:None ~nodes
let faulty ~fault ~nodes = make ~fault:(Some fault) ~nodes

let engine_phi ~nodes =
  {
    Engine.name = "SciDB + Xeon Phi";
    kind = `Multi_node nodes;
    supports = (fun _ -> true);
    load =
      (fun ds q ~params ~timeout_s ->
        run ~device:Device.xeon_phi_5110p ~nodes ds q ~params ~timeout_s);
  }
