(** Multi-node column store configurations (Figures 3 and 4): the
    microarray table is row-partitioned by patient across nodes (small
    tables replicated); data management runs the usual relational plans
    per node.

    - [pbdr ~nodes]: "Column store + pbdR" — per-node results cross the
      CSV export boundary into pbdR, which runs the ScaLAPACK-style
      parallel kernels.
    - [udf ~nodes]: "Column store + UDFs" — analytics in-process per node
      with partial aggregation across nodes, no export; the biclustering
      UDF keeps its chatty-marshalling pathology. *)

val pbdr : nodes:int -> Engine.t
val udf : nodes:int -> Engine.t

val pbdr_faulty : fault:Gb_fault.Fault.plan -> nodes:int -> Engine.t
val udf_faulty : fault:Gb_fault.Fault.plan -> nodes:int -> Engine.t
(** The same configurations with a deterministic fault plan armed on the
    simulated cluster; absorbed faults surface as [Engine.Degraded]. *)
