(** The system-under-test interface.

    An engine loads a data set once (setup, untimed) and then answers
    queries, reporting the data-management and analytics phases separately
    (the split behind Figures 2 and 4). Real-compute engines report wall
    time; cluster/coprocessor/MapReduce engines report simulated seconds
    that combine genuinely measured compute with modelled communication. *)

type payload =
  | Regression of { intercept : float; coefficients : float array; r2 : float }
  | Cov_pairs of { n_genes : int; top_pairs : (int * int * float) list }
  | Biclusters of { clusters : (int array * int array * float) list }
  | Singular_values of float array
  | Enrichment of (int * float) list
      (** significantly enriched (go_id, p-value), ascending p *)
  | Overlaps of {
      n_variants : int;
      n_genes : int;
      pairs : (int * int * int) list;
          (** overlapping (variant_id, gene_id, overlap_len) in canonical
              ascending (variant_id, gene_id) order — integer-exact, so
              digests are bitwise comparable across engines *)
    }

val payload_kind : payload -> string
(** Constructor name, e.g. ["regression"] — diagnostics and CSV dumps. *)

type timing = { dm : float; analytics : float }

val total : timing -> float

type recovery = {
  retries : int;
      (** transient-failure re-executions: per-node memory retries,
          MapReduce task re-attempts, message retransmissions *)
  recovered_nodes : int;  (** node crashes absorbed by re-execution *)
  speculative : int;  (** straggler tasks rescued by a backup copy *)
  wasted_s : float;
      (** simulated seconds of redone work, abandoned attempts and
          backoff waits — the price of finishing *)
}

val no_recovery : recovery

type outcome =
  | Completed of timing * payload
  | Degraded of timing * recovery * payload
      (** the query finished and its answer is valid, but only after the
          fault-tolerance machinery absorbed injected failures; [recovery]
          quantifies the overhead *)
  | Timed_out
  | Out_of_memory
  | Errored of string
      (** the engine hit an execution error (e.g. a degenerate selection
          made a kernel's preconditions fail); treated like a failure, not
          a crash *)
  | Unsupported

val completed : timing -> ?recovery:recovery -> payload -> outcome
(** [Completed] when [recovery] is absent or {!no_recovery}, [Degraded]
    otherwise — engines finish every query through this so fault-free
    runs are bit-identical with and without the fault machinery. *)

val timing_of : outcome -> timing option
(** The phase timings of a (possibly degraded) completion. *)

val payload_of : outcome -> payload option
val recovery_of : outcome -> recovery option

type t = {
  name : string;
  kind : [ `Single_node | `Multi_node of int ];
  supports : Query.t -> bool;
  load : Dataset.t -> Query.t -> params:Query.params -> timeout_s:float -> outcome;
}

val run : t -> Dataset.t -> Query.t -> ?params:Query.params ->
  timeout_s:float -> unit -> outcome
(** Drives [load], translating [Deadline.Timeout], [Mr.Timeout] and
    memory-budget failures (including injected ones that exhaust their
    retry budget) into the corresponding outcomes. Any other exception
    becomes [Errored] — a misbehaving engine can fail its own cell but
    never abort the grid.

    [run] also arms a wall-clock {!Gb_util.Deadline.Ambient} deadline of
    [timeout_s] for the duration of [load]: kernels poll it from their
    iteration loops, so a query can be cancelled mid-phase rather than
    only at the engines' phase-boundary checks. *)

val pp_outcome : Format.formatter -> outcome -> unit

exception Memory_exceeded
(** Raised by engines whose modelled memory budget is exhausted (the
    paper's "temporary space allocation failed" result). *)
