(** The GenBase benchmark queries: the paper's five plus the Q6
    genomic overlap join. *)

type t =
  | Q1_regression
  | Q2_covariance
  | Q3_biclustering
  | Q4_svd
  | Q5_statistics
  | Q6_overlap

type params = {
  func_threshold : int; (** Q1/Q4: genes with [function < threshold] *)
  disease_id : int; (** Q2: patients with this disease *)
  max_age : int; (** Q3: patients younger than this *)
  gender : int; (** Q3: 1 = male *)
  cov_top_fraction : float; (** Q2: keep this fraction of gene pairs *)
  svd_k : int; (** Q4: number of singular values (the paper's 50) *)
  sample_fraction : float; (** Q5: fraction of patients sampled *)
  p_threshold : float; (** Q5: enrichment significance cutoff *)
  min_overlap_bp : int; (** Q6: minimum shared bases for a match *)
}

val default_params : params
val all : t list
val name : t -> string
(** Short name, e.g. ["regression"]. *)

val title : t -> string
(** Figure title, e.g. ["Linear Regression"]. *)

val of_name : string -> t option
