(** SciDB on a multi-node cluster (Figures 3 and 4), optionally with one
    Xeon Phi coprocessor per node (Table 1).

    Arrays are chunk-partitioned by patient rows across nodes; dimension
    filters run per node. Moving from one node to several triggers a chunk
    redistribution of the selected array before analytics — the data
    movement the paper suspects makes SciDB slower on two nodes than on
    one. Analytics use ScaLAPACK-style parallel kernels. *)

val engine : nodes:int -> Engine.t

val faulty : fault:Gb_fault.Fault.plan -> nodes:int -> Engine.t
(** [engine] with a deterministic fault plan armed on the simulated
    cluster; absorbed faults surface as [Engine.Degraded] outcomes. *)

val engine_phi : nodes:int -> Engine.t
(** Per-node coprocessor: superstep compute is scaled by the device's
    kernel-class speedup and per-node PCIe transfers are charged. *)
