open Gb_relational
module Stopwatch = Gb_util.Clock.Stopwatch

(* Re-key a (patient_id, gene_id, value) relation into Sql_linalg triple
   form, renumbering columns densely via [gene_index]. *)
let to_triples rel ~gene_index =
  let s = rel.Ops.schema in
  let pi = Schema.index s "patient_id" in
  let gi = Schema.index s "gene_id" in
  let vi = Schema.index s "value" in
  {
    Ops.schema = Sql_linalg.triple_schema;
    rows =
      Seq.map
        (fun row ->
          [|
            row.(pi);
            Value.Int (gene_index (Value.to_int row.(gi)));
            row.(vi);
          |])
        rel.Ops.rows;
  }

let dense_index ids =
  let tbl = Hashtbl.create (Array.length ids) in
  Array.iteri (fun k id -> Hashtbl.add tbl id k) ids;
  fun id -> Hashtbl.find tbl id

(* Patient ids are not renumbered: the SQL operators only group on them. *)
let identity_triples rel =
  to_triples rel ~gene_index:Fun.id

let run ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:timeout_s in
  let check () = Gb_util.Deadline.check dl in
  let db = Engine_sql.make_db Engine_sql.Row_backend ds ~check in
  let time name f =
    Gb_obs.Profile.with_ ~cat:"phase" ~name
      ~dur_of:(fun (_, t) -> Some t)
      (fun () ->
        let r, t = Stopwatch.time f in
        check ();
        (r, t))
  in
  let n_genes = Array.length ds.Gb_datagen.Generate.genes in
  match query with
  | Query.Q1_regression ->
    (* MADlib's linear regression is a native C++ aggregate: one streaming
       pass assembling the normal equations. *)
    let (x, y, _gene_ids), dm = time "dm" (fun () -> Relops.q1_dm db params) in
    let payload, analytics =
      time "analytics" (fun () ->
          let m = Gb_linalg.Linreg.fit_normal_equations x y in
          Engine.Regression
            {
              intercept = m.Gb_linalg.Linreg.intercept;
              coefficients = m.Gb_linalg.Linreg.coefficients;
              r2 = m.Gb_linalg.Linreg.r_squared;
            })
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q2_covariance ->
    (* Covariance "simulated in SQL": joins and aggregates over the triple
       relation, no native kernel. *)
    let (triples, n_sel), dm0 =
      time "dm" (fun () ->
          let joined =
            Ops.filter
              Expr.(col "disease_id" =% int params.disease_id)
              (db.Relops.scan "patients" [ "patient_id"; "disease_id" ])
            |> Ops.project [ "patient_id" ]
            |> Ops.hash_join ~on:[ ("patient_id", "patient_id") ]
                 (Ops.guard check
                    (db.Relops.scan "microarray"
                       [ "gene_id"; "patient_id"; "value" ]))
          in
          let rows = Ops.to_list (identity_triples joined) in
          let distinct = Hashtbl.create 64 in
          List.iter
            (fun row ->
              Hashtbl.replace distinct (Value.to_int row.(0)) ())
            rows;
          (Ops.of_list Sql_linalg.triple_schema rows, Hashtbl.length distinct))
    in
    let payload, analytics =
      time "analytics" (fun () ->
          let cov_rel = Sql_linalg.covariance ~check ~rows:n_sel triples in
          let c = Sql_linalg.to_matrix ~rows:n_genes ~cols:n_genes cov_rel in
          let pairs =
            Gb_linalg.Covariance.top_fraction c params.cov_top_fraction
          in
          Engine.Cov_pairs { n_genes; top_pairs = pairs })
    in
    let pairs =
      match payload with Engine.Cov_pairs p -> p.top_pairs | _ -> []
    in
    let _n, dm1 = time "dm:join_metadata" (fun () -> Relops.q2_join_metadata db pairs) in
    Engine.Completed ({ dm = dm0 +. dm1; analytics }, payload)
  | Query.Q3_biclustering -> Engine.Unsupported
  | Query.Q4_svd ->
    let (triples, n_patients, n_sel_genes), dm =
      time "dm" (fun () ->
          let genes_sel =
            Ops.filter
              Expr.(col "func" <% int params.func_threshold)
              (db.Relops.scan "genes" [ "gene_id"; "func" ])
            |> Ops.project [ "gene_id" ]
          in
          let gene_ids =
            Ops.to_list genes_sel
            |> List.map (fun r -> Value.to_int r.(0))
            |> Array.of_list
          in
          Array.sort compare gene_ids;
          let joined =
            Ops.hash_join ~on:[ ("gene_id", "gene_id") ]
              (Ops.guard check
                 (db.Relops.scan "microarray"
                    [ "gene_id"; "patient_id"; "value" ]))
              (Ops.of_list
                 (Schema.make [ ("gene_id", Value.TInt) ])
                 (Array.to_list
                    (Array.map (fun id -> [| Value.Int id |]) gene_ids)))
          in
          let idx = dense_index gene_ids in
          let rows = Ops.to_list (to_triples joined ~gene_index:idx) in
          ( Ops.of_list Sql_linalg.triple_schema rows,
            Array.length ds.Gb_datagen.Generate.patients,
            Array.length gene_ids ))
    in
    let payload, analytics =
      time "analytics" (fun () ->
          let eigs =
            Sql_linalg.power_iteration_eigs ~check ~rows:n_patients
              ~cols:n_sel_genes
              ~k:(min params.svd_k n_sel_genes)
              ~iters:8 triples
          in
          Engine.Singular_values
            (Array.map (fun e -> sqrt (Float.max 0. e)) eigs))
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q5_statistics ->
    let (scores, go_pairs), dm =
      time "dm" (fun () ->
          Relops.q5_dm db params
            ~n_patients:(Array.length ds.Gb_datagen.Generate.patients))
    in
    (* The Wilcoxon test runs in plpython inside the database. *)
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.enrichment_of ~n_genes:(Array.length scores) ~go_pairs
            ~go_terms:ds.Gb_datagen.Generate.spec.Gb_datagen.Spec.go_terms
            ~p_threshold:params.p_threshold ~scores)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q6_overlap ->
    (* Hand-written SQL pipeline (no planner): scan both interval tables
       and run the sort-merge sweep operator directly, as a MADlib-style
       native aggregate would. *)
    let pairs, dm =
      time "dm" (fun () ->
          let joined =
            Ops.interval_join ~trace:"interval_join"
              ~min_overlap:params.min_overlap_bp
              ~left_span:("vstart", "vlen") ~right_span:("position", "length")
              (Ops.guard check
                 (db.Relops.scan "variants" [ "variant_id"; "vstart"; "vlen" ]))
              (db.Relops.scan "genes" [ "gene_id"; "position"; "length" ])
          in
          let s = joined.Ops.schema in
          let vi = Schema.index s "variant_id" in
          let gi = Schema.index s "gene_id" in
          let oi = Schema.index s "overlap_len" in
          Ops.to_list joined
          |> List.map (fun row ->
                 ( Value.to_int row.(vi),
                   Value.to_int row.(gi),
                   Value.to_int row.(oi) )))
    in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.overlaps_of
            ~n_variants:(Array.length ds.Gb_datagen.Generate.variants)
            ~n_genes pairs)
    in
    Engine.Completed ({ dm; analytics }, payload)

let engine =
  {
    Engine.name = "Postgres + Madlib";
    kind = `Single_node;
    supports = (fun q -> q <> Query.Q3_biclustering);
    load = run;
  }
