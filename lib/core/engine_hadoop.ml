module Mr = Gb_mapreduce.Mr
module Hive = Gb_mapreduce.Hive
module Mahout = Gb_mapreduce.Mahout

let field line i =
  match List.nth_opt (String.split_on_char ',' line) i with
  | Some f -> f
  | None -> failwith ("Hadoop: short record " ^ line)

let dense_index ids =
  let tbl = Hashtbl.create (Array.length ids) in
  Array.iteri (fun k id -> Hashtbl.add tbl id k) ids;
  tbl

(* Renumber one id field of a joined table to dense indices (a map-only
   job with the dictionary shipped via distributed cache). *)
let to_dense_triples mr table ~id_field ~other_field ~value_field ~index
    ~dense_first =
  Mr.map_only mr ~name:"renumber"
    ~mapper:(fun line ->
      let f = Array.of_list (String.split_on_char ',' line) in
      let dense = Hashtbl.find index (int_of_string f.(id_field)) in
      let other = f.(other_field) and v = f.(value_field) in
      if dense_first then [ Printf.sprintf "%d,%s,%s" dense other v ]
      else [ Printf.sprintf "%s,%d,%s" other dense v ])
    table

let run ?fault ~nodes ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:(2. *. timeout_s) in
  let mr = Mr.create ~nodes () in
  Mr.set_deadline mr timeout_s;
  Option.iter (Mr.set_fault_plan mr) fault;
  let hdb = Dataset.load_hadoop_db ds in
  let phase name f =
    let t0 = Mr.elapsed mr in
    let gc = Gb_obs.Profile.start () in
    let r = f () in
    Gb_util.Deadline.check dl;
    let t1 = Mr.elapsed mr in
    Gb_obs.Obs.Span.emit ~cat:"phase"
      ~attrs:(Gb_obs.Profile.delta_attrs gc)
      ~name ~t0 ~t1 ();
    (r, t1 -. t0)
  in
  let n_patients = Array.length ds.Gb_datagen.Generate.patients in
  let n_genes = Array.length ds.Gb_datagen.Generate.genes in
  let select_genes_and_join () =
    let sel =
      Hive.select mr ~name:"sel-genes"
        (fun f -> int_of_string f.(4) < params.func_threshold)
        hdb.Dataset.genes_h
    in
    let keys = Hive.project mr ~name:"gene-keys" [ 0 ] sel in
    let gene_ids =
      List.map int_of_string keys |> List.sort compare |> Array.of_list
    in
    let joined =
      Hive.join mr ~name:"micro-genes" ~left_key:0 ~right_key:0
        hdb.Dataset.microarray_h keys
    in
    (* joined fields: gene_id, patient_id, value *)
    let idx = dense_index gene_ids in
    let triples =
      to_dense_triples mr joined ~id_field:0 ~other_field:1 ~value_field:2
        ~index:idx ~dense_first:false
    in
    (triples, gene_ids)
  in
  match query with
  | Query.Q1_regression ->
    let (triples, gene_ids, y), dm =
      phase "dm" (fun () ->
          let triples, gene_ids = select_genes_and_join () in
          let resp =
            Hive.project mr ~name:"responses" [ 0; 5 ] hdb.Dataset.patients_h
          in
          let y = Array.make n_patients 0. in
          List.iter
            (fun line ->
              y.(int_of_string (field line 0)) <- float_of_string (field line 1))
            resp;
          (triples, gene_ids, y))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let beta =
            Mahout.regression mr ~rows:n_patients ~cols:(Array.length gene_ids)
              triples y
          in
          Engine.Regression
            {
              intercept = beta.(0);
              coefficients = Array.sub beta 1 (Array.length beta - 1);
              r2 = Float.nan;
            })
    in
    Engine.completed { dm; analytics } ~recovery:(Qcommon.mr_recovery mr)
      payload
  | Query.Q2_covariance ->
    let (triples, n_sel), dm0 =
      phase "dm" (fun () ->
          let sel =
            Hive.select mr ~name:"sel-patients"
              (fun f -> int_of_string f.(4) = params.disease_id)
              hdb.Dataset.patients_h
          in
          let keys = Hive.project mr ~name:"patient-keys" [ 0 ] sel in
          let pat_ids =
            List.map int_of_string keys |> List.sort compare |> Array.of_list
          in
          let joined =
            Hive.join mr ~name:"micro-patients" ~left_key:1 ~right_key:0
              hdb.Dataset.microarray_h keys
          in
          let idx = dense_index pat_ids in
          let triples =
            to_dense_triples mr joined ~id_field:1 ~other_field:0
              ~value_field:2 ~index:idx ~dense_first:true
          in
          (triples, Array.length pat_ids))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let cov =
            Mahout.covariance mr ~rows:n_sel ~cols:n_genes triples
          in
          let c = Mahout.to_mat ~rows:n_genes ~cols:n_genes cov in
          let pairs =
            Gb_linalg.Covariance.top_fraction c params.cov_top_fraction
          in
          Engine.Cov_pairs { n_genes; top_pairs = pairs })
    in
    let pairs =
      match payload with Engine.Cov_pairs p -> p.top_pairs | _ -> []
    in
    let _joined, dm1 =
      phase "dm:join_metadata" (fun () ->
          let pair_table =
            List.map (fun (a, b, v) -> Printf.sprintf "%d,%d,%.12g" a b v) pairs
          in
          Hive.join mr ~name:"pairs-meta" ~left_key:0 ~right_key:0 pair_table
            hdb.Dataset.genes_h)
    in
    Engine.completed { dm = dm0 +. dm1; analytics }
      ~recovery:(Qcommon.mr_recovery mr) payload
  | Query.Q3_biclustering | Query.Q5_statistics -> Engine.Unsupported
  | Query.Q4_svd ->
    let (triples, gene_ids), dm =
      phase "dm" (fun () -> select_genes_and_join ())
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let eigs =
            Mahout.lanczos_eigs mr ~rows:n_patients
              ~cols:(Array.length gene_ids)
              ~k:(min params.svd_k (Array.length gene_ids))
              triples
          in
          Engine.Singular_values
            (Array.map (fun e -> sqrt (Float.max 0. e)) eigs))
    in
    Engine.completed { dm; analytics } ~recovery:(Qcommon.mr_recovery mr)
      payload
  | Query.Q6_overlap ->
    (* Shuffle-by-genomic-bin: the mapper replicates each interval (from
       either table, tagged V/G) to every fixed-width bin it touches;
       each reducer sweeps its bin locally and counts a pair only if the
       bin owns max(starts), so replicated intervals never double-count.
       The reducer's output is re-sorted canonically at the end, making
       the payload bitwise identical to the single-node plans. *)
    let module Ranges = Gb_util.Ranges in
    let bin_width = Ranges.default_bin_width in
    let tagged, dm0 =
      phase "dm" (fun () ->
          let vs =
            List.map (fun l -> "V," ^ l) hdb.Dataset.variants_h
          in
          let gs =
            Hive.project mr ~name:"gene-coords" [ 0; 2; 3 ] hdb.Dataset.genes_h
            |> List.map (fun l -> "G," ^ l)
          in
          vs @ gs)
    in
    let lines, dm1 =
      phase "analytics" (fun () ->
          Mr.run_job mr ~name:"overlap-bins"
            ~mapper:(fun line ->
              let f = Array.of_list (String.split_on_char ',' line) in
              let iv =
                Ranges.of_start_len
                  ~id:(int_of_string f.(1))
                  ~start:(int_of_string f.(2))
                  ~len:(int_of_string f.(3))
              in
              List.map
                (fun bin ->
                  ( string_of_int bin,
                    Printf.sprintf "%s,%d,%d,%d" f.(0) iv.Ranges.id
                      iv.Ranges.lo iv.Ranges.hi ))
                (Ranges.bins_of ~bin_width iv))
            ~reducer:(fun key values ->
              let bin = int_of_string key in
              let side tag =
                List.filter_map
                  (fun v ->
                    match String.split_on_char ',' v with
                    | [ t; id; lo; hi ] when t = tag ->
                      Some
                        {
                          Ranges.id = int_of_string id;
                          lo = int_of_string lo;
                          hi = int_of_string hi;
                        }
                    | _ -> None)
                  values
                |> Array.of_list
              in
              let vs = side "V" and gs = side "G" in
              Ranges.sweep_join ~min_overlap:params.min_overlap_bp vs gs
              |> List.filter (fun (v, g, _) ->
                     let find arr id =
                       let found = ref None in
                       Array.iter
                         (fun (iv : Ranges.iv) ->
                           if iv.id = id then found := Some iv)
                         arr;
                       Option.get !found
                     in
                     Ranges.owns_pair ~bin_width ~bin (find vs v) (find gs g))
              |> List.map (fun (v, g, len) ->
                     Printf.sprintf "%d,%d,%d" v g len))
            tagged)
    in
    let payload =
      Qcommon.overlaps_of
        ~n_variants:(Array.length ds.Gb_datagen.Generate.variants)
        ~n_genes
        (List.map
           (fun line ->
             match String.split_on_char ',' line with
             | [ v; g; len ] ->
               (int_of_string v, int_of_string g, int_of_string len)
             | _ -> failwith ("Hadoop: bad overlap record " ^ line))
           lines)
    in
    Engine.completed { dm = dm0; analytics = dm1 }
      ~recovery:(Qcommon.mr_recovery mr) payload

let supports = function
  | Query.Q1_regression | Query.Q2_covariance | Query.Q4_svd
  | Query.Q6_overlap ->
    true
  | Query.Q3_biclustering | Query.Q5_statistics -> false

let engine =
  {
    Engine.name = "Hadoop";
    kind = `Single_node;
    supports;
    load = (fun ds q ~params ~timeout_s -> run ~nodes:1 ds q ~params ~timeout_s);
  }

let make_multinode ~fault ~nodes =
  {
    Engine.name = "Hadoop";
    kind = `Multi_node nodes;
    supports;
    load = (fun ds q ~params ~timeout_s -> run ?fault ~nodes ds q ~params ~timeout_s);
  }

let engine_multinode ~nodes = make_multinode ~fault:None ~nodes
let multinode_faulty ~fault ~nodes = make_multinode ~fault:(Some fault) ~nodes
