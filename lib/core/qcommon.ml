module G = Gb_datagen.Generate
module Mat = Gb_linalg.Mat

let collect_ids pred arr id_of =
  Array.to_list arr
  |> List.filter pred
  |> List.map id_of
  |> Array.of_list

let genes_with_func_below (ds : Dataset.t) thr =
  collect_ids
    (fun (g : G.gene) -> g.func < thr)
    ds.genes
    (fun (g : G.gene) -> g.gene_id)

let patients_with_disease (ds : Dataset.t) id =
  collect_ids
    (fun (p : G.patient) -> p.disease_id = id)
    ds.patients
    (fun (p : G.patient) -> p.patient_id)

let patients_by_age_gender (ds : Dataset.t) ~max_age ~gender =
  collect_ids
    (fun (p : G.patient) -> p.age < max_age && p.gender = gender)
    ds.patients
    (fun (p : G.patient) -> p.patient_id)

let sampled_patients (ds : Dataset.t) frac =
  let n = Array.length ds.patients in
  let k = max 2 (int_of_float (Float.round (frac *. float_of_int n))) in
  let k = min k n in
  Array.init k Fun.id

let regression_of x y =
  let m = Gb_linalg.Linreg.fit x y in
  Engine.Regression
    {
      intercept = m.Gb_linalg.Linreg.intercept;
      coefficients = m.Gb_linalg.Linreg.coefficients;
      r2 = m.Gb_linalg.Linreg.r_squared;
    }

let covariance_of ~gene_ids ~top_fraction m =
  let c = Gb_linalg.Covariance.matrix m in
  let pairs = Gb_linalg.Covariance.top_fraction c top_fraction in
  let mapped =
    List.map (fun (i, j, v) -> (gene_ids.(i), gene_ids.(j), v)) pairs
  in
  Engine.Cov_pairs { n_genes = Array.length gene_ids; top_pairs = mapped }

let biclusters_of ?seed m =
  let config =
    match seed with
    | None -> Gb_bicluster.Cheng_church.default_config
    | Some s -> { Gb_bicluster.Cheng_church.default_config with seed = s }
  in
  let found =
    Gb_obs.Profile.with_ ~cat:"kernel" ~name:"cheng_church"
      ~attrs:
        [
          ("rows", Gb_obs.Obs.Int m.Mat.rows);
          ("cols", Gb_obs.Obs.Int m.Mat.cols);
        ]
      (fun () -> Gb_bicluster.Cheng_church.run ~config m)
  in
  Engine.Biclusters
    {
      clusters =
        List.map
          (fun (b : Gb_bicluster.Cheng_church.bicluster) ->
            (b.rows, b.cols, b.msr))
          found;
    }

let svd_of ~k m =
  let rng = Gb_util.Prng.create 0x5EEDL in
  let res = Gb_linalg.Svd.top_k ~rng m k in
  Engine.Singular_values res.Gb_linalg.Svd.s

let enrichment_scores sample_matrix =
  Mat.col_means sample_matrix

let enrichment_of ~n_genes ~go_pairs ~go_terms ~p_threshold ~scores =
  if Array.length scores <> n_genes then
    invalid_arg "Qcommon.enrichment_of: scores length";
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"wilcoxon_enrichment"
    ~attrs:
      [
        ("genes", Gb_obs.Obs.Int n_genes);
        ("go_terms", Gb_obs.Obs.Int go_terms);
      ]
  @@ fun () ->
  let ranks = Gb_stats.Ranking.ranks scores in
  let members = Array.make go_terms [] in
  Array.iter
    (fun (gene, term) ->
      if term >= 0 && term < go_terms then members.(term) <- gene :: members.(term))
    go_pairs;
  let results = ref [] in
  for term = 0 to go_terms - 1 do
    let in_group = Array.make n_genes false in
    List.iter (fun g -> in_group.(g) <- true) members.(term);
    let n_in = List.length members.(term) in
    if n_in > 0 && n_in < n_genes then begin
      let r = Gb_stats.Wilcoxon.from_ranks ~ranks ~in_group in
      if r.Gb_stats.Wilcoxon.p_value < p_threshold then
        results := (term, r.Gb_stats.Wilcoxon.p_value) :: !results
    end
  done;
  let sorted =
    List.sort
      (fun (t1, p1) (t2, p2) ->
        let c = Float.compare p1 p2 in
        if c <> 0 then c else Int.compare t1 t2)
      !results
  in
  Engine.Enrichment sorted

(* --- Q6: genomic overlap join --- *)

module Ranges = Gb_util.Ranges

let variant_ivs (ds : Dataset.t) =
  Array.map
    (fun (v : G.variant) ->
      Ranges.of_start_len ~id:v.variant_id ~start:v.vstart ~len:v.vlen)
    ds.variants

let gene_ivs (ds : Dataset.t) =
  Array.map
    (fun (g : G.gene) ->
      Ranges.of_start_len ~id:g.gene_id ~start:g.position ~len:g.length)
    ds.genes

let overlaps_of ~n_variants ~n_genes pairs =
  let canonical =
    List.sort
      (fun (v1, g1, _) (v2, g2, _) ->
        let c = Int.compare v1 v2 in
        if c <> 0 then c else Int.compare g1 g2)
      pairs
  in
  Engine.Overlaps { n_variants; n_genes; pairs = canonical }

let overlap_pairs_out = Gb_obs.Metric.counter ~unit_:"pair" "q6.overlap_pairs"

(* The shared sweep kernel: partitioned over contiguous output ranges of
   the (id-ordered) variant side via pool-size-independent chunks, with
   per-chunk results stitched in chunk order — so the pair list is
   identical at any domain count, and already canonically sorted. *)
let overlap_sweep ?(min_overlap = 1) variants genes =
  let module Pool = Gb_par.Pool in
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"overlap_sweep"
    ~attrs:
      [
        ("variants", Gb_obs.Obs.Int (Array.length variants));
        ("genes", Gb_obs.Obs.Int (Array.length genes));
      ]
  @@ fun () ->
  let chunks = Pool.ranges ~grain:1024 ~lo:0 ~hi:(Array.length variants) in
  let outs =
    Pool.map_list
      (fun (a, b) ->
        Ranges.sweep_join ~min_overlap (Array.sub variants a (b - a)) genes)
      chunks
  in
  let pairs = List.concat outs in
  Gb_obs.Metric.add overlap_pairs_out (List.length pairs);
  pairs

let overlap_axis_end variants genes =
  let m = ref 0 in
  Array.iter (fun (iv : Ranges.iv) -> m := max !m iv.hi) variants;
  Array.iter (fun (iv : Ranges.iv) -> m := max !m iv.hi) genes;
  !m

(* Bin-aligned coordinate spans for the cluster engines: the axis's
   fixed-width bins are block-partitioned across nodes, giving each node
   one contiguous [lo, hi) slice of the genome. *)
let overlap_node_spans ~bin_width ~nodes ~axis_end =
  let nbins = max nodes (1 + Ranges.bin_of ~bin_width (max 0 (axis_end - 1))) in
  Gb_cluster.Partition.block_rows ~rows:nbins ~nodes
  |> Array.map (fun (start, len) ->
         (start * bin_width, (start + len) * bin_width))

(* One node's share of the overlap join: sweep the intervals touching
   its span, then keep only the pairs the span owns — the pair's
   max(starts) falls inside it — so replicated boundary intervals are
   counted exactly once across the cluster.  Interval ids must index the
   full arrays (true for {!variant_ivs}/{!gene_ivs}). *)
let overlap_pairs_in_span ?(min_overlap = 1) ~span:(lo, hi) variants genes =
  let touching ivs =
    Array.to_list ivs
    |> List.filter (fun (iv : Ranges.iv) -> iv.lo < hi && iv.hi > lo)
    |> Array.of_list
  in
  Ranges.sweep_join ~min_overlap (touching variants) (touching genes)
  |> List.filter (fun (v, g, _) ->
         let s = max variants.(v).Ranges.lo genes.(g).Ranges.lo in
         s >= lo && s < hi)

(* --- recovery accounting shared by the fault-tolerant engines --- *)

let cluster_recovery cluster =
  let s = Gb_cluster.Cluster.stats cluster in
  {
    Engine.retries =
      s.Gb_cluster.Cluster.oom_retries + s.Gb_cluster.Cluster.messages_dropped;
    recovered_nodes = s.Gb_cluster.Cluster.crashes_recovered;
    speculative = s.Gb_cluster.Cluster.speculative_restarts;
    wasted_s = s.Gb_cluster.Cluster.wasted_seconds;
  }

let mr_recovery mr =
  {
    Engine.retries = Gb_mapreduce.Mr.task_retries mr;
    recovered_nodes = 0;
    speculative = 0;
    wasted_s = Gb_mapreduce.Mr.wasted_seconds mr;
  }

let arm_cluster cluster = function
  | None -> ()
  | Some plan ->
    Gb_cluster.Cluster.set_fault_plan cluster plan;
    (* Crash recovery is only interesting with something to restore from:
       checkpoint every 4 supersteps, 64 KiB of state per node. *)
    Gb_cluster.Cluster.set_checkpoint cluster ~every:4 ~bytes_per_node:65536
