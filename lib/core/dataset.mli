(** A generated benchmark data set plus bridges into each engine family's
    native representation. Loading into a store is setup, not a measured
    part of any query. *)

type t = Gb_datagen.Generate.t

val generate : ?seed:int64 -> Gb_datagen.Spec.t -> t
val of_size : Gb_datagen.Spec.size -> t

(** {1 Relational form} *)

val microarray_schema : Gb_relational.Schema.t
(** (gene_id, patient_id, value) — the paper's triple representation. *)

val patients_schema : Gb_relational.Schema.t
val genes_schema : Gb_relational.Schema.t
val go_schema : Gb_relational.Schema.t

val variants_schema : Gb_relational.Schema.t
(** (variant_id, vstart, vlen) — genomic intervals for Q6. *)

val microarray_rows : t -> Gb_relational.Value.t array list
val patients_rows : t -> Gb_relational.Value.t array list
val genes_rows : t -> Gb_relational.Value.t array list
val go_rows : t -> Gb_relational.Value.t array list
val variants_rows : t -> Gb_relational.Value.t array list

(** {1 Row / column stores} *)

type relational_db = {
  microarray_r : Gb_relational.Row_store.t;
  patients_r : Gb_relational.Row_store.t;
  genes_r : Gb_relational.Row_store.t;
  go_r : Gb_relational.Row_store.t;
  variants_r : Gb_relational.Row_store.t;
}

type columnar_db = {
  microarray_c : Gb_relational.Col_store.t;
  patients_c : Gb_relational.Col_store.t;
  genes_c : Gb_relational.Col_store.t;
  go_c : Gb_relational.Col_store.t;
  variants_c : Gb_relational.Col_store.t;
}

val load_row_stores : t -> relational_db
val load_col_stores : t -> columnar_db

(** {1 Array form} *)

type array_db = {
  expression : Gb_arraydb.Chunked.t; (** patients x genes *)
  patient_attrs : Gb_arraydb.Attr_array.t;
      (** age, gender, zipcode, disease_id, drug_response *)
  gene_attrs : Gb_arraydb.Attr_array.t;
      (** target, position, length, function *)
  go_pairs : (int * int) array;
  variant_ranges : (int * int) array;
      (** (vstart, vlen) indexed by variant_id *)
}

val load_array_db : t -> array_db

(** {1 Hadoop text form} *)

type hadoop_db = {
  microarray_h : string list; (** "gene_id,patient_id,value" *)
  patients_h : string list;
  genes_h : string list;
  go_h : string list;
  variants_h : string list; (** "variant_id,vstart,vlen" *)
}

val load_hadoop_db : t -> hadoop_db
