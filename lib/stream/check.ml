module Query = Genbase.Query
module Engine = Genbase.Engine
module Oracle = Gb_conformance.Oracle
module Compare = Gb_conformance.Compare

let tolerance = function
  | Query.Q1_regression | Query.Q2_covariance -> Compare.numeric
  | _ -> Compare.strict

let classify ?(params = Query.default_params) ?(timeout_s = 120.0) exec q =
  let ds = Exec.snapshot exec in
  let reference =
    Engine.run Oracle.reference ds q ~params ~timeout_s ()
  in
  let payload = Exec.refresh ~force:true exec q in
  let candidate =
    Engine.completed
      { Engine.dm = 0.0; analytics = 0.0 }
      ~recovery:(Exec.recovery exec) payload
  in
  Oracle.classify ~tol:(tolerance q) ~p_threshold:params.Query.p_threshold
    ~reference candidate

let check_all ?params ?timeout_s exec qs =
  List.map (fun q -> (q, classify ?params ?timeout_s exec q)) qs
