module G = Gb_datagen.Generate
module Mat = Gb_linalg.Mat
module Moments = Gb_linalg.Moments
module Ranges = Gb_util.Ranges
module Query = Genbase.Query
module Engine = Genbase.Engine
module Qcommon = Genbase.Qcommon
module Dataset = Genbase.Dataset
module Relops = Genbase.Relops
module Ops = Gb_relational.Ops
module Plan = Gb_relational.Plan
module Expr = Gb_relational.Expr
module Value = Gb_relational.Value
module Delta = Gb_relational.Delta

type config = { params : Query.params; staleness_limit : int }

let default_config = { params = Query.default_params; staleness_limit = 256 }

(* --- per-family state --------------------------------------------------- *)

(* Q1: joint sketch over (selected genes ++ drug response); appends are
   buffered per batch and folded in through the relational delta-join at
   [flush]. *)
type q1 = {
  sel : int array; (* ascending gene ids with func < threshold *)
  slot : int array; (* gene_id -> index in [sel], or -1 *)
  mutable sketch : Moments.t; (* dim = |sel| + 1 *)
  mutable pending : (G.patient * float array) list; (* newest first *)
}

type q2 = {
  mutable cohort : bool array; (* patient_id -> disease-cohort member *)
  mutable sketch : Moments.t; (* dim = n_genes *)
}

(* Q5: per-gene sums over the first-[k] sample, maintained in exactly
   [Mat.col_means]'s summation order (see the .mli). *)
type q5 = {
  mutable k : int;
  sums : float array;
}

type q6 = {
  gene_ivs : Ranges.iv array;
  mutable rev_chunks : (int * int * int) list list;
      (* newest delta first; each chunk canonical, ids monotone across
         chunks, so [List.concat (List.rev rev_chunks)] is canonical *)
}

(* Q3/Q4: cached payload + rows applied since it was materialized. *)
type fallback = { mutable payload : Engine.payload; mutable stale : int }

type t = {
  config : config;
  genes : int;
  catalog : Plan.catalog; (* genes table + empty microarray, for deltas *)
  mutable q1 : q1 option;
  mutable q2 : q2 option;
  mutable q3 : fallback option;
  mutable q4 : fallback option;
  mutable q5 : q5 option;
  mutable q6 : q6 option;
  mutable recomputes : int;
}

(* --- relational scaffolding --------------------------------------------- *)

let base_catalog (ds : Genbase.Dataset.t) =
  let genes_rows = Dataset.genes_rows ds in
  let n_genes = List.length genes_rows in
  let scan name cols =
    match name with
    | "genes" -> (
      let r = Ops.of_list Dataset.genes_schema genes_rows in
      match cols with [] -> r | _ -> Ops.project cols r)
    | "microarray" -> Ops.of_list Dataset.microarray_schema []
    | other -> invalid_arg ("Stream.Maintain: unknown table " ^ other)
  in
  {
    Plan.scan;
    schema_of = Relops.table_schema;
    row_count = (fun name -> if String.equal name "genes" then n_genes else 0);
  }

(* Microarray triples (gene_id, patient_id, value) for one full row,
   gene-ascending — patient-major concatenation keeps per-column delta
   application in ascending patient order. *)
let row_triples ~patient_id row =
  List.init (Array.length row) (fun j ->
      [| Value.Int j; Value.Int patient_id; Value.Float row.(j) |])

let q1_delta_plan thr =
  Plan.Project
    ( [ "gene_id"; "patient_id"; "value" ],
      Plan.Filter
        ( Expr.(col "func" <% int thr),
          Plan.Join
            {
              left = Plan.Scan ("microarray", []);
              right = Plan.Scan ("genes", []);
              on = [ ("gene_id", "gene_id") ];
            } ) )

let q5_delta_plan k = Plan.Filter (Expr.(col "patient_id" <% int k), Plan.Scan ("microarray", []))

(* --- selection predicates over the live view (mirror the reference
   engine's id-ascending subsets) ----------------------------------------- *)

let live_patients_where live pred =
  let acc = ref [] in
  for i = Live.n_patients live - 1 downto 0 do
    if pred (Live.patient live i) then acc := i :: !acc
  done;
  Array.of_list !acc

let selected_genes (ds : Genbase.Dataset.t) thr =
  Array.to_list ds.G.genes
  |> List.filter_map (fun (g : G.gene) ->
         if g.G.func < thr then Some g.G.gene_id else None)
  |> Array.of_list

let live_sub_rows live ids =
  Mat.init (Array.length ids) (Live.n_genes live) (fun i j ->
      Live.cell live ~patient_id:ids.(i) ~gene_id:j)

(* --- init --------------------------------------------------------------- *)

let sample_size frac n =
  min (max 2 (int_of_float (Float.round (frac *. float_of_int n)))) n

let init_q1 live (params : Query.params) =
  let ds = Live.base live in
  let sel = selected_genes ds params.Query.func_threshold in
  let d = Array.length sel in
  let slot = Array.make (Live.n_genes live) (-1) in
  Array.iteri (fun s gid -> slot.(gid) <- s) sel;
  let n = Live.n_patients live in
  let joint =
    Mat.init n (d + 1) (fun i j ->
        if j < d then Live.cell live ~patient_id:i ~gene_id:sel.(j)
        else (Live.patient live i).G.drug_response)
  in
  { sel; slot; sketch = Moments.of_matrix joint; pending = [] }

let init_q2 live (params : Query.params) =
  let ids =
    live_patients_where live (fun p ->
        p.G.disease_id = params.Query.disease_id)
  in
  let cohort = Array.make (max 1 (Live.n_patients live)) false in
  Array.iter (fun i -> cohort.(i) <- true) ids;
  { cohort; sketch = Moments.of_matrix (live_sub_rows live ids) }

let init_q5 live (params : Query.params) =
  let k = sample_size params.Query.sample_fraction (Live.n_patients live) in
  let g = Live.n_genes live in
  let sums = Array.make g 0.0 in
  for i = 0 to k - 1 do
    for j = 0 to g - 1 do
      sums.(j) <- sums.(j) +. Live.cell live ~patient_id:i ~gene_id:j
    done
  done;
  { k; sums }

let init_q6 live (params : Query.params) =
  let ds = Live.base live in
  let gene_ivs = Qcommon.gene_ivs ds in
  let vivs = Qcommon.variant_ivs ds in
  let pairs =
    Qcommon.overlap_sweep ~min_overlap:params.Query.min_overlap_bp vivs
      gene_ivs
  in
  { gene_ivs; rev_chunks = [ pairs ] }

let recompute_q3 t live =
  let params = t.config.params in
  let ids =
    live_patients_where live (fun p ->
        p.G.age < params.Query.max_age && p.G.gender = params.Query.gender)
  in
  Qcommon.biclusters_of (live_sub_rows live ids)

let recompute_q4 t live =
  let params = t.config.params in
  let ds = Live.base live in
  let sel = selected_genes ds params.Query.func_threshold in
  let m =
    Mat.init (Live.n_patients live) (Array.length sel) (fun i j ->
        Live.cell live ~patient_id:i ~gene_id:sel.(j))
  in
  Qcommon.svd_of ~k:params.Query.svd_k m

let create ?(config = default_config) ~queries live =
  let has q = List.mem q queries in
  let params = config.params in
  let t =
    {
      config;
      genes = Live.n_genes live;
      catalog = base_catalog (Live.base live);
      q1 = None;
      q2 = None;
      q3 = None;
      q4 = None;
      q5 = None;
      q6 = None;
      recomputes = 0;
    }
  in
  if has Query.Q1_regression then t.q1 <- Some (init_q1 live params);
  if has Query.Q2_covariance then t.q2 <- Some (init_q2 live params);
  if has Query.Q3_biclustering then
    t.q3 <- Some { payload = recompute_q3 t live; stale = 0 };
  if has Query.Q4_svd then
    t.q4 <- Some { payload = recompute_q4 t live; stale = 0 };
  if has Query.Q5_statistics then t.q5 <- Some (init_q5 live params);
  if has Query.Q6_overlap then t.q6 <- Some (init_q6 live params);
  t

let copy t =
  {
    t with
    q1 =
      Option.map
        (fun (s : q1) -> { s with sketch = Moments.copy s.sketch })
        t.q1;
    q2 =
      Option.map
        (fun (s : q2) ->
          {
            cohort = Array.copy s.cohort;
            sketch = Moments.copy s.sketch;
          })
        t.q2;
    q3 = Option.map (fun (f : fallback) -> { f with stale = f.stale }) t.q3;
    q4 = Option.map (fun (f : fallback) -> { f with stale = f.stale }) t.q4;
    q5 = Option.map (fun (s : q5) -> { s with sums = Array.copy s.sums }) t.q5;
    q6 = Option.map (fun (s : q6) -> { s with rev_chunks = s.rev_chunks }) t.q6;
  }

(* --- event hooks -------------------------------------------------------- *)

let touch_fallback t =
  let bump = Option.iter (fun (f : fallback) -> f.stale <- f.stale + 1) in
  bump t.q3;
  bump t.q4

(* Q5 sample growth: fold the filter-surviving delta triples into the
   per-gene sums (patient-major order — see the .mli exactness note). *)
let q5_grow t live (s : q5) =
  let n = Live.n_patients live in
  let k' = sample_size t.config.params.Query.sample_fraction n in
  if k' > s.k then begin
    let triples = ref [] in
    for i = k' - 1 downto s.k do
      triples := row_triples ~patient_id:i (Live.row live i) :: !triples
    done;
    let delta =
      Ops.of_list Dataset.microarray_schema (List.concat !triples)
    in
    let rows =
      Delta.delta_rows ~base:t.catalog ~table:"microarray" ~delta
        (q5_delta_plan k')
    in
    Seq.iter
      (fun row ->
        match row with
        | [| Value.Int gene_id; Value.Int _; Value.Float v |] ->
          s.sums.(gene_id) <- s.sums.(gene_id) +. v
        | _ -> invalid_arg "Stream.Maintain: bad Q5 delta row")
      rows.Ops.rows;
    s.k <- k'
  end

let on_append t live (p : G.patient) row =
  Option.iter
    (fun (s : q1) -> s.pending <- (p, row) :: s.pending)
    t.q1;
  Option.iter
    (fun (s : q2) ->
      let n = Live.n_patients live in
      if Array.length s.cohort < n then begin
        let c' = Array.make (max 8 (2 * n)) false in
        Array.blit s.cohort 0 c' 0 (Array.length s.cohort);
        s.cohort <- c'
      end;
      if p.G.disease_id = t.config.params.Query.disease_id then begin
        s.cohort.(p.G.patient_id) <- true;
        Moments.add_row s.sketch row
      end)
    t.q2;
  Option.iter (fun s -> q5_grow t live s) t.q5;
  touch_fallback t

let joint_of_row (s : q1) row y =
  let d = Array.length s.sel in
  Array.init (d + 1) (fun j -> if j < d then row.(s.sel.(j)) else y)

let on_update t live ~patient_id ~gene_id ~old_row =
  Option.iter
    (fun (s : q1) ->
      if s.slot.(gene_id) >= 0 then begin
        let y = (Live.patient live patient_id).G.drug_response in
        let old_joint = joint_of_row s old_row y in
        let new_joint = Array.copy old_joint in
        new_joint.(s.slot.(gene_id)) <-
          Live.cell live ~patient_id ~gene_id;
        Moments.remove_row s.sketch old_joint;
        Moments.add_row s.sketch new_joint
      end)
    t.q1;
  Option.iter
    (fun (s : q2) ->
      if patient_id < Array.length s.cohort && s.cohort.(patient_id) then begin
        Moments.remove_row s.sketch old_row;
        Moments.add_row s.sketch (Live.row live patient_id)
      end)
    t.q2;
  Option.iter
    (fun (s : q5) ->
      (* In-sample cell update: re-fold the affected column from the live
         matrix so the sum stays the exact ascending fold. *)
      if patient_id < s.k then begin
        let acc = ref 0.0 in
        for i = 0 to s.k - 1 do
          acc := !acc +. Live.cell live ~patient_id:i ~gene_id
        done;
        s.sums.(gene_id) <- !acc
      end)
    t.q5;
  touch_fallback t

let on_variants t _live vs =
  Option.iter
    (fun (s : q6) ->
      if vs <> [] then begin
        let ivs =
          Array.of_list
            (List.map
               (fun (v : G.variant) ->
                 Ranges.of_start_len ~id:v.G.variant_id ~start:v.G.vstart
                   ~len:v.G.vlen)
               vs)
        in
        let delta =
          Qcommon.overlap_sweep
            ~min_overlap:t.config.params.Query.min_overlap_bp ivs s.gene_ivs
        in
        s.rev_chunks <- delta :: s.rev_chunks
      end)
    t.q6

(* Q1 batch boundary: run the buffered appends through the delta-join
   (microarray delta x genes, func < threshold) and rank-1-update the
   joint sketch with each resulting patient vector. *)
let flush t _live =
  Option.iter
    (fun (s : q1) ->
      match s.pending with
      | [] -> ()
      | pending ->
        let pending = List.rev pending in
        let delta_rows_list =
          List.concat_map
            (fun ((p : G.patient), row) ->
              row_triples ~patient_id:p.G.patient_id row)
            pending
        in
        let delta = Ops.of_list Dataset.microarray_schema delta_rows_list in
        let out =
          Delta.delta_rows ~base:t.catalog ~table:"microarray" ~delta
            (q1_delta_plan t.config.params.Query.func_threshold)
        in
        let d = Array.length s.sel in
        let bufs = Hashtbl.create (List.length pending) in
        List.iter
          (fun ((p : G.patient), _) ->
            Hashtbl.replace bufs p.G.patient_id (Array.make (d + 1) 0.0))
          pending;
        Seq.iter
          (fun row ->
            match row with
            | [| Value.Int gene_id; Value.Int pid; Value.Float v |] ->
              let buf = Hashtbl.find bufs pid in
              buf.(s.slot.(gene_id)) <- v
            | _ -> invalid_arg "Stream.Maintain: bad Q1 delta row")
          out.Ops.rows;
        List.iter
          (fun ((p : G.patient), _) ->
            let buf = Hashtbl.find bufs p.G.patient_id in
            buf.(d) <- p.G.drug_response;
            Moments.add_row s.sketch buf)
          pending;
        s.pending <- [])
    t.q1

(* --- answers ------------------------------------------------------------ *)

let q1_payload (s : q1) =
  let r = Moments.regression s.sketch in
  Engine.Regression
    {
      intercept = r.Moments.intercept;
      coefficients = r.Moments.coefficients;
      r2 = r.Moments.r_squared;
    }

let q2_payload t (s : q2) =
  let cov = Moments.covariance s.sketch in
  let pairs =
    Gb_linalg.Covariance.top_fraction cov t.config.params.Query.cov_top_fraction
  in
  Engine.Cov_pairs { n_genes = t.genes; top_pairs = pairs }

let q5_payload t live (s : q5) =
  let ds = Live.base live in
  let k = float_of_int (max 1 s.k) in
  let scores = Array.map (fun sum -> sum /. k) s.sums in
  Qcommon.enrichment_of ~n_genes:t.genes ~go_pairs:ds.G.go
    ~go_terms:ds.G.spec.Gb_datagen.Spec.go_terms
    ~p_threshold:t.config.params.Query.p_threshold ~scores

let q6_payload live (s : q6) =
  let pairs = List.concat (List.rev s.rev_chunks) in
  Engine.Overlaps
    {
      n_variants = Live.n_variants live;
      n_genes = Array.length s.gene_ivs;
      pairs;
    }

let missing q =
  invalid_arg
    (Printf.sprintf "Stream.Maintain: query %s is not maintained"
       (Query.name q))

let refresh ?(force = false) t live q =
  let fallback (f : fallback) recompute =
    if force || f.stale > t.config.staleness_limit then begin
      f.payload <- recompute t live;
      f.stale <- 0;
      t.recomputes <- t.recomputes + 1
    end;
    f.payload
  in
  match q with
  | Query.Q1_regression -> (
    flush t live;
    match t.q1 with Some s -> q1_payload s | None -> missing q)
  | Query.Q2_covariance -> (
    match t.q2 with Some s -> q2_payload t s | None -> missing q)
  | Query.Q3_biclustering -> (
    match t.q3 with Some f -> fallback f recompute_q3 | None -> missing q)
  | Query.Q4_svd -> (
    match t.q4 with Some f -> fallback f recompute_q4 | None -> missing q)
  | Query.Q5_statistics -> (
    match t.q5 with Some s -> q5_payload t live s | None -> missing q)
  | Query.Q6_overlap -> (
    match t.q6 with Some s -> q6_payload live s | None -> missing q)

let staleness t q =
  match q with
  | Query.Q3_biclustering -> (
    match t.q3 with Some f -> f.stale | None -> missing q)
  | Query.Q4_svd -> ( match t.q4 with Some f -> f.stale | None -> missing q)
  | _ -> 0

let recomputes t = t.recomputes
