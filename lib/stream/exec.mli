(** The streaming executor: watermark, checkpoints, crash recovery.

    An executor owns a {!Live} view, a {!Maintain} state and an ingest
    log, and applies batches in order. The {b watermark} is the offset
    of the last fully applied batch (-1 before any); maintainer answers
    always reflect exactly the batches at or below it. Every
    [checkpoint_every] batches the executor snapshots live + maintainer
    state (a simulated durable checkpoint). An injected crash
    ({!Gb_fault.Fault.crash_at} on node 0 at superstep = batch offset)
    discards all in-memory state; recovery restores the latest
    checkpoint — or rebuilds from the base dataset when none exists —
    and replays the log from there. Replay is deterministic, so a
    crashed-and-recovered run converges to bit-identical state, which
    the conformance tests assert.

    Telemetry: the [stream_watermark] and [stream_ingest_lag] gauge
    families (plus batch/crash/replay counters) update on every applied
    batch and appear in the Prometheus exposition when telemetry is
    enabled. *)

type counters = {
  mutable batches_applied : int;  (** including re-applied (replayed) ones *)
  mutable rows_appended : int;
  mutable cells_updated : int;
  mutable variants_appended : int;
  mutable checkpoints : int;
  mutable crashes : int;
  mutable replayed_batches : int;
  mutable wasted_s : float;
      (** wall seconds of applied-then-discarded batch work *)
}

type t

val create :
  ?config:Maintain.config ->
  ?checkpoint_every:int ->
  queries:Genbase.Query.t list ->
  Genbase.Dataset.t ->
  Ingest.log ->
  t
(** [checkpoint_every] defaults to 4 batches. *)

val watermark : t -> int
val lag : t -> int
(** Batches in the log not yet applied. *)

val counters : t -> counters
val live : t -> Live.t

val step : ?fault:Gb_fault.Fault.plan -> t -> unit
(** Apply the next batch (consulting the fault plan first — a planned
    crash at that offset fires once, triggering recovery and replay
    before the batch is applied). Raises [Invalid_argument] when the log
    is exhausted. *)

val run : ?fault:Gb_fault.Fault.plan -> t -> unit
(** Apply every remaining batch. *)

val refresh : ?force:bool -> t -> Genbase.Query.t -> Genbase.Engine.payload
(** The maintained answer as of the watermark (see {!Maintain.refresh}
    for the staleness semantics of the Q3/Q4 fallback). *)

val staleness : t -> Genbase.Query.t -> int
val snapshot : t -> Genbase.Dataset.t
(** One-shot materialization of the current live state. *)

val recovery : t -> Genbase.Engine.recovery
(** Crash/replay work absorbed so far, as degraded-completion metadata:
    retries = replayed batches, recovered_nodes = crashes. *)

val engine :
  ?fault:Gb_fault.Fault.plan ->
  ?profile:Ingest.profile ->
  ?staleness_limit:int ->
  ?checkpoint_every:int ->
  unit ->
  Genbase.Engine.t
(** The subsystem as a harness pseudo-engine ("Streaming IVM"): [load]
    generates the dataset's ingest log, streams it through an executor
    (with optional fault injection), and answers the query from the
    maintained state — [dm] is the ingest+maintenance phase, [analytics]
    the final refresh (forced, so the fallback queries answer on the
    final data). Completes [Degraded] with the replay counts as recovery
    metadata when a crash was absorbed. *)
