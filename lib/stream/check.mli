(** Conformance of incremental refresh against one-shot recompute.

    The oracle side materializes the executor's live state into a plain
    dataset and runs the Vanilla R reference on it from scratch; the
    candidate side is the maintained answer. Q3–Q6 maintainers reproduce
    the reference kernels' float operations exactly (Q6 is
    integer-exact), so they are held to the strict profile; the Q1/Q2
    sketches accumulate rank-1 float updates in a different order than
    the reference's blocked kernels, so they get the numeric profile —
    the same tolerance split the engine grid applies to
    normal-equation/streaming engines. *)

val tolerance : Genbase.Query.t -> Gb_conformance.Compare.tol
(** [numeric] for Q1/Q2, [strict] otherwise. *)

val classify :
  ?params:Genbase.Query.params ->
  ?timeout_s:float ->
  Exec.t ->
  Genbase.Query.t ->
  Gb_conformance.Oracle.classification
(** Run the reference on {!Exec.snapshot}, compare against
    [Exec.refresh ~force:true]. A refresh on an executor that absorbed
    crashes classifies as [Degraded_match] (carrying the replay
    counts) rather than [Match]. *)

val check_all :
  ?params:Genbase.Query.params ->
  ?timeout_s:float ->
  Exec.t ->
  Genbase.Query.t list ->
  (Genbase.Query.t * Gb_conformance.Oracle.classification) list
