(** Deterministic streaming ingest log.

    A log is a fixed sequence of batches of events — new patients with
    their microarray rows, in-place expression cell updates, new variant
    calls — drawn from the dataset's [stream_seed], itself the last PRNG
    split of the generator root. Same dataset, same profile, same log;
    replaying any prefix is bit-for-bit reproducible, which is what the
    crash/recovery protocol and the conformance checks lean on. *)

type event =
  | Append_patient of { patient : Gb_datagen.Generate.patient; row : float array }
      (** a new patient plus their full microarray row *)
  | Update_cell of { patient_id : int; gene_id : int; value : float }
      (** re-measured expression value *)
  | Append_variant of Gb_datagen.Generate.variant
      (** a new variant call interval *)

type batch = { offset : int; events : event list }
(** [offset] is the batch's position in the log, from 0. *)

type log = { seed : int64; batches : batch array }

type profile = {
  batches : int;
  appends_per_batch : int;
  updates_per_batch : int;
  variants_per_batch : int;
}

val default_profile : profile
(** 8 batches of 8 appends, 4 updates and 2 variants. *)

val profile :
  ?batches:int -> ?appends:int -> ?updates:int -> ?variants:int -> unit ->
  profile

val generate : ?seed:int64 -> ?profile:profile -> Genbase.Dataset.t -> log
(** [seed] defaults to the dataset's [stream_seed] (pass one explicitly
    for datasets loaded from CSV, whose stream seed is 0). Appended
    patients follow the base generator's attribute distributions and,
    when the dataset carries planted regression structure, their drug
    response follows the planted linear signal — so the streamed tail is
    statistically like the base, not adversarial noise. *)

val events : log -> int
(** Total event count. *)

val appends : log -> int
(** Total appended-patient count. *)

val apply_event : Live.t -> event -> unit

val apply_batch : Live.t -> batch -> unit

val materialize : ?upto:int -> Genbase.Dataset.t -> log -> Genbase.Dataset.t
(** The dataset after applying the first [upto] batches (default: all) —
    the one-shot-recompute side of every refresh-vs-recompute check. *)
