(** The mutable, growable form of a benchmark dataset.

    A [Live.t] starts as a copy of a generated {!Genbase.Dataset.t} and
    absorbs ingest events in place: patient rows append to the bottom of
    the expression matrix (capacity-doubling), cells update in place,
    variants append to the interval table. Genes, GO memberships and the
    planted structure are immutable — GenBase's streams grow the
    observation axes, not the gene axis.

    {!snapshot} materializes the current state back into a plain
    [Dataset.t], the single source of truth for what "the dataset after
    these events" means: conformance checks run full recomputes against
    snapshots, and maintainer answers must match them. *)

type t

val of_dataset : Genbase.Dataset.t -> t
(** Deep copy; the source dataset is never mutated. *)

val copy : t -> t
(** Deep copy (checkpointing). *)

val base : t -> Genbase.Dataset.t
(** The dataset this live view started from (not a snapshot). *)

val n_patients : t -> int
val n_genes : t -> int
val n_variants : t -> int

val append_patient : t -> Gb_datagen.Generate.patient -> float array -> unit
(** The patient's id must equal the current patient count and the row
    must have one value per gene. *)

val update_cell : t -> patient_id:int -> gene_id:int -> float -> float
(** Set one expression cell; returns the previous value. *)

val append_variant : t -> Gb_datagen.Generate.variant -> unit
(** The variant's id must equal the current variant count. *)

val cell : t -> patient_id:int -> gene_id:int -> float
val row : t -> int -> float array
(** Copy of one expression row (length [n_genes]). *)

val patient : t -> int -> Gb_datagen.Generate.patient
val matrix : t -> Gb_linalg.Mat.t
(** Fresh [n_patients x n_genes] copy of the live expression matrix. *)

val snapshot : t -> Genbase.Dataset.t
(** Materialize the current state as a plain dataset: the spec's patient
    count tracks the live count, everything immutable is shared with the
    base. A snapshot taken before any event is field-for-field identical
    to the base dataset (same dataset fingerprint). *)
