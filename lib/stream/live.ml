module G = Gb_datagen.Generate
module Spec = Gb_datagen.Spec
module Mat = Gb_linalg.Mat

type t = {
  base : Genbase.Dataset.t;
  genes : int;
  mutable expr : Mat.t; (* capacity x genes; rows [0, n) live *)
  mutable n : int;
  mutable patients : G.patient array; (* capacity; [0, n) live *)
  mutable variants : G.variant array; (* capacity; [0, nv) live *)
  mutable nv : int;
}

let of_dataset (ds : Genbase.Dataset.t) =
  let n, g = Mat.dims ds.G.expression in
  {
    base = ds;
    genes = g;
    expr = Mat.copy ds.G.expression;
    n;
    patients = Array.copy ds.G.patients;
    variants = Array.copy ds.G.variants;
    nv = Array.length ds.G.variants;
  }

let copy t =
  {
    t with
    expr = Mat.copy t.expr;
    patients = Array.copy t.patients;
    variants = Array.copy t.variants;
  }

let base t = t.base
let n_patients t = t.n
let n_genes t = t.genes
let n_variants t = t.nv

let grow_rows t =
  let cap = t.expr.Mat.rows in
  let cap' = max 8 (2 * cap) in
  let expr' = Mat.create cap' t.genes in
  for i = 0 to t.n - 1 do
    for j = 0 to t.genes - 1 do
      Mat.unsafe_set expr' i j (Mat.unsafe_get t.expr i j)
    done
  done;
  t.expr <- expr';
  let dummy = t.patients.(0) in
  let pats' = Array.make cap' dummy in
  Array.blit t.patients 0 pats' 0 t.n;
  t.patients <- pats'

let append_patient t (p : G.patient) row =
  if p.G.patient_id <> t.n then
    invalid_arg
      (Printf.sprintf "Live.append_patient: id %d, expected %d"
         p.G.patient_id t.n);
  if Array.length row <> t.genes then
    invalid_arg "Live.append_patient: row length";
  if t.n >= t.expr.Mat.rows then grow_rows t;
  for j = 0 to t.genes - 1 do
    Mat.unsafe_set t.expr t.n j row.(j)
  done;
  t.patients.(t.n) <- p;
  t.n <- t.n + 1

let update_cell t ~patient_id ~gene_id value =
  if patient_id < 0 || patient_id >= t.n then
    invalid_arg "Live.update_cell: patient_id";
  let old = Mat.get t.expr patient_id gene_id in
  Mat.set t.expr patient_id gene_id value;
  old

let append_variant t (v : G.variant) =
  if v.G.variant_id <> t.nv then
    invalid_arg
      (Printf.sprintf "Live.append_variant: id %d, expected %d" v.G.variant_id
         t.nv);
  let cap = Array.length t.variants in
  if t.nv >= cap then begin
    let dummy =
      if cap > 0 then t.variants.(0)
      else { G.variant_id = 0; vstart = 0; vlen = 1 }
    in
    let vs' = Array.make (max 8 (2 * cap)) dummy in
    Array.blit t.variants 0 vs' 0 t.nv;
    t.variants <- vs'
  end;
  t.variants.(t.nv) <- v;
  t.nv <- t.nv + 1

let cell t ~patient_id ~gene_id = Mat.get t.expr patient_id gene_id

let row t i =
  if i < 0 || i >= t.n then invalid_arg "Live.row";
  Array.init t.genes (fun j -> Mat.unsafe_get t.expr i j)

let patient t i =
  if i < 0 || i >= t.n then invalid_arg "Live.patient";
  t.patients.(i)

let matrix t =
  Mat.init t.n t.genes (fun i j -> Mat.unsafe_get t.expr i j)

let snapshot t : Genbase.Dataset.t =
  let spec =
    let s = t.base.G.spec in
    if s.Spec.patients = t.n then s else { s with Spec.patients = t.n }
  in
  {
    t.base with
    G.spec = spec;
    expression = matrix t;
    patients = Array.sub t.patients 0 t.n;
    variants = Array.sub t.variants 0 t.nv;
  }
