module G = Gb_datagen.Generate
module Spec = Gb_datagen.Spec
module Prng = Gb_util.Prng
module Mat = Gb_linalg.Mat

type event =
  | Append_patient of { patient : G.patient; row : float array }
  | Update_cell of { patient_id : int; gene_id : int; value : float }
  | Append_variant of G.variant

type batch = { offset : int; events : event list }
type log = { seed : int64; batches : batch array }

type profile = {
  batches : int;
  appends_per_batch : int;
  updates_per_batch : int;
  variants_per_batch : int;
}

let default_profile =
  { batches = 8; appends_per_batch = 8; updates_per_batch = 4;
    variants_per_batch = 2 }

let profile ?(batches = default_profile.batches)
    ?(appends = default_profile.appends_per_batch)
    ?(updates = default_profile.updates_per_batch)
    ?(variants = default_profile.variants_per_batch) () =
  { batches; appends_per_batch = appends; updates_per_batch = updates;
    variants_per_batch = variants }

(* Expression values for streamed rows/updates: the base generator's
   factor model has var ~= 1.25 per cell; a plain N(0, 1.1^2) draw keeps
   streamed cells on the same scale without needing the (unrecorded)
   latent factors. *)
let gen_value rng = 1.1 *. Prng.normal rng

let gen_patient rng (ds : Genbase.Dataset.t) ~id =
  let spec = ds.G.spec in
  let g = spec.Spec.genes in
  let row = Array.init g (fun _ -> gen_value rng) in
  let planted = ds.G.planted in
  let response =
    if Array.length planted.G.signal_genes = 0 then Prng.normal rng
    else begin
      let acc = ref planted.G.signal_intercept in
      Array.iteri
        (fun idx gid ->
          acc := !acc +. (planted.G.signal_coefs.(idx) *. row.(gid)))
        planted.G.signal_genes;
      !acc +. (0.25 *. Prng.normal rng)
    end
  in
  let patient =
    {
      G.patient_id = id;
      age = 18 + Prng.int rng 78;
      gender = Prng.int rng 2;
      zipcode = 10_000 + Prng.int rng 89_999;
      disease_id = 1 + Prng.int rng spec.Spec.diseases;
      drug_response = response;
    }
  in
  Append_patient { patient; row }

let gen_variant rng ~id ~span =
  let vstart = Prng.int rng (max 1 span) in
  let vlen =
    if Prng.int rng 10 < 7 then 1 + Prng.int rng 50
    else 100 + Prng.int rng 9_900
  in
  Append_variant { G.variant_id = id; vstart; vlen }

let generate ?seed ?(profile = default_profile) (ds : Genbase.Dataset.t) =
  let seed = match seed with Some s -> s | None -> ds.G.stream_seed in
  let rng = Prng.create seed in
  let g = ds.G.spec.Spec.genes in
  let span =
    let last = ds.G.genes.(Array.length ds.G.genes - 1) in
    last.G.position + last.G.length
  in
  let n = ref (Array.length ds.G.patients) in
  let nv = ref (Array.length ds.G.variants) in
  let batches =
    Array.init profile.batches (fun offset ->
        let events = ref [] in
        for _ = 1 to profile.appends_per_batch do
          events := gen_patient rng ds ~id:!n :: !events;
          incr n
        done;
        for _ = 1 to profile.updates_per_batch do
          let patient_id = Prng.int rng !n in
          let gene_id = Prng.int rng g in
          events :=
            Update_cell { patient_id; gene_id; value = gen_value rng }
            :: !events
        done;
        for _ = 1 to profile.variants_per_batch do
          events := gen_variant rng ~id:!nv ~span :: !events;
          incr nv
        done;
        { offset; events = List.rev !events })
  in
  { seed; batches }

let events (log : log) =
  Array.fold_left (fun acc b -> acc + List.length b.events) 0 log.batches

let appends (log : log) =
  Array.fold_left
    (fun acc b ->
      acc
      + List.length
          (List.filter (function Append_patient _ -> true | _ -> false)
             b.events))
    0 log.batches

let apply_event live = function
  | Append_patient { patient; row } -> Live.append_patient live patient row
  | Update_cell { patient_id; gene_id; value } ->
    ignore (Live.update_cell live ~patient_id ~gene_id value)
  | Append_variant v -> Live.append_variant live v

let apply_batch live b = List.iter (apply_event live) b.events

let materialize ?upto ds (log : log) =
  let upto = match upto with Some u -> u | None -> Array.length log.batches in
  let live = Live.of_dataset ds in
  for i = 0 to min upto (Array.length log.batches) - 1 do
    apply_batch live log.batches.(i)
  done;
  Live.snapshot live
