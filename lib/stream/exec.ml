module Query = Genbase.Query
module Engine = Genbase.Engine
module Fault = Gb_fault.Fault
module Tele = Gb_obs.Telemetry
module Stopwatch = Gb_util.Clock.Stopwatch

(* Registered once, ungated — the disabled-mode contract is Telemetry's. *)
let g_watermark =
  Tele.gauge_family
    ~help:"Offset of the last fully applied ingest batch (-1 before any)"
    "stream_watermark"

let g_lag =
  Tele.gauge_family ~help:"Ingest batches generated but not yet applied"
    "stream_ingest_lag"

let c_batches =
  Tele.counter_family ~help:"Batches applied, including replayed ones"
    "stream_batches_applied_total"

let c_crashes =
  Tele.counter_family ~help:"Injected crashes absorbed by the executor"
    "stream_crashes_total"

let c_replayed =
  Tele.counter_family ~help:"Batches replayed after crash recovery"
    "stream_replayed_batches_total"

type counters = {
  mutable batches_applied : int;
  mutable rows_appended : int;
  mutable cells_updated : int;
  mutable variants_appended : int;
  mutable checkpoints : int;
  mutable crashes : int;
  mutable replayed_batches : int;
  mutable wasted_s : float;
}

type t = {
  base : Genbase.Dataset.t;
  log : Ingest.log;
  queries : Query.t list;
  config : Maintain.config;
  checkpoint_every : int;
  mutable live : Live.t;
  mutable maintain : Maintain.t;
  mutable watermark : int;
  mutable ckpt : (int * Live.t * Maintain.t) option;
  counters : counters;
  crashed : (int, unit) Hashtbl.t;
  batch_cost : float array; (* wall seconds of the last application *)
}

let create ?(config = Maintain.default_config) ?(checkpoint_every = 4)
    ~queries base log =
  if checkpoint_every < 1 then invalid_arg "Exec.create: checkpoint_every";
  let live = Live.of_dataset base in
  let maintain = Maintain.create ~config ~queries live in
  {
    base;
    log;
    queries;
    config;
    checkpoint_every;
    live;
    maintain;
    watermark = -1;
    ckpt = None;
    counters =
      {
        batches_applied = 0;
        rows_appended = 0;
        cells_updated = 0;
        variants_appended = 0;
        checkpoints = 0;
        crashes = 0;
        replayed_batches = 0;
        wasted_s = 0.0;
      };
    crashed = Hashtbl.create 4;
    batch_cost = Array.make (Array.length log.Ingest.batches) 0.0;
  }

let watermark t = t.watermark
let lag t = Array.length t.log.Ingest.batches - (t.watermark + 1)
let counters t = t.counters
let live t = t.live

let publish t =
  Tele.set g_watermark [] (float_of_int t.watermark);
  Tele.set g_lag [] (float_of_int (lag t))

let checkpoint t =
  t.ckpt <- Some (t.watermark, Live.copy t.live, Maintain.copy t.maintain);
  t.counters.checkpoints <- t.counters.checkpoints + 1

(* Crash: all in-memory state is lost. Restore the last durable
   checkpoint (or rebuild from the base dataset) and account the batches
   that must be re-applied — their earlier application cost is wasted
   work. *)
let recover t =
  t.counters.crashes <- t.counters.crashes + 1;
  Tele.incr c_crashes [];
  let restored_to =
    match t.ckpt with
    | Some (at, l, m) ->
      t.live <- Live.copy l;
      t.maintain <- Maintain.copy m;
      at
    | None ->
      t.live <- Live.of_dataset t.base;
      t.maintain <-
        Maintain.create ~config:t.config ~queries:t.queries t.live;
      -1
  in
  let replayed = t.watermark - restored_to in
  t.counters.replayed_batches <- t.counters.replayed_batches + replayed;
  Tele.incr c_replayed [] ~by:(float_of_int replayed);
  for off = restored_to + 1 to t.watermark do
    t.counters.wasted_s <- t.counters.wasted_s +. t.batch_cost.(off)
  done;
  t.watermark <- restored_to;
  publish t

let apply_batch t (b : Ingest.batch) =
  let variants = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Ingest.Append_patient { patient; row } ->
        Live.append_patient t.live patient row;
        Maintain.on_append t.maintain t.live patient row;
        t.counters.rows_appended <- t.counters.rows_appended + 1
      | Ingest.Update_cell { patient_id; gene_id; value } ->
        let old_row = Live.row t.live patient_id in
        ignore (Live.update_cell t.live ~patient_id ~gene_id value);
        Maintain.on_update t.maintain t.live ~patient_id ~gene_id ~old_row;
        t.counters.cells_updated <- t.counters.cells_updated + 1
      | Ingest.Append_variant v ->
        Live.append_variant t.live v;
        variants := v :: !variants;
        t.counters.variants_appended <- t.counters.variants_appended + 1)
    b.Ingest.events;
  Maintain.on_variants t.maintain t.live (List.rev !variants);
  Maintain.flush t.maintain t.live

let step ?fault t =
  let next = t.watermark + 1 in
  if next >= Array.length t.log.Ingest.batches then
    invalid_arg "Exec.step: log exhausted";
  (match fault with
  | Some plan
    when Fault.crash_at plan ~node:0 ~superstep:next
         && not (Hashtbl.mem t.crashed next) ->
    Hashtbl.add t.crashed next ();
    recover t
  | _ -> ());
  (* After recovery the next batch may be an earlier one. *)
  let next = t.watermark + 1 in
  let (), cost =
    Stopwatch.time (fun () -> apply_batch t t.log.Ingest.batches.(next))
  in
  t.batch_cost.(next) <- cost;
  t.watermark <- next;
  t.counters.batches_applied <- t.counters.batches_applied + 1;
  Tele.incr c_batches [];
  if (next + 1) mod t.checkpoint_every = 0 then checkpoint t;
  publish t

let run ?fault t =
  while lag t > 0 do
    step ?fault t
  done

let refresh ?force t q = Maintain.refresh ?force t.maintain t.live q
let staleness t q = Maintain.staleness t.maintain q
let snapshot t = Live.snapshot t.live

let recovery t =
  {
    Engine.retries = t.counters.replayed_batches;
    recovered_nodes = t.counters.crashes;
    speculative = 0;
    wasted_s = t.counters.wasted_s;
  }

let engine ?fault ?profile ?staleness_limit ?(checkpoint_every = 4) () =
  let load ds query ~params ~timeout_s:_ =
    let config =
      {
        Maintain.params;
        staleness_limit =
          (match staleness_limit with
          | Some l -> l
          | None -> Maintain.default_config.Maintain.staleness_limit);
      }
    in
    let log = Ingest.generate ?profile ds in
    let exec = create ~config ~checkpoint_every ~queries:[ query ] ds log in
    let (), dm = Stopwatch.time (fun () -> run ?fault exec) in
    let payload, analytics =
      Stopwatch.time (fun () -> refresh ~force:true exec query)
    in
    Engine.completed { Engine.dm; analytics } ~recovery:(recovery exec)
      payload
  in
  {
    Engine.name = "Streaming IVM";
    kind = `Single_node;
    supports = (fun _ -> true);
    load;
  }
