(** Incremental maintainers: one materialized answer per query family,
    updated from ingest events instead of recomputed from scratch.

    Maintenance strategy per query:

    - {b Q1 regression} — a joint mergeable-moment sketch
      ({!Gb_linalg.Moments}) over (selected genes, drug response).
      Appends flow through a relational {e delta-join}: the batch's new
      microarray triples are joined against the gene table's
      [func < threshold] selection by running the ordinary Q1 plan over
      a {!Gb_relational.Delta} catalog, and the resulting joint rows
      rank-1-update the sketch. Refresh solves the centered normal
      equations — numerically equivalent (tolerance-profile) to the
      reference QR fit.
    - {b Q2 covariance} — a moment sketch over the disease cohort's full
      gene vector; appends add rows, cell updates downdate/update.
      Covariance is [M2/(n-1)] at any point.
    - {b Q3 biclustering, Q4 SVD} — full-recompute fallback: iterative
      kernels whose answers do not decompose over row deltas. The cached
      payload is served until the staleness bound (rows applied since
      the last recompute) is exceeded, then recomputed from the live
      snapshot with the shared reference kernels.
    - {b Q5 statistics} — delta-filter IVM: the sample predicate is
      [patient_id < k], so sample growth is a relational filter over the
      delta triples; per-gene sums are maintained in exact row order
      (appends in ascending id order, updates recompute the affected
      column's fold), reproducing [Mat.col_means]'s summation order
      bit-for-bit — the enrichment payload is {e bitwise} equal to a
      full recompute.
    - {b Q6 overlap} — delta interval sweep: each batch's new variants
      sweep against the (static) gene intervals via
      {!Gb_util.Ranges.sweep_join}; new pairs append in canonical order,
      so the maintained pair list is integer-exact.

    Event hooks must be called {e after} the event is applied to the
    {!Live} view, in event order; {!flush} runs once per batch boundary
    (it drains the buffered delta-join work). *)

type config = {
  params : Genbase.Query.params;
  staleness_limit : int;
      (** Q3/Q4: max rows applied (appends + updates) before a
          non-forced {!refresh} recomputes *)
}

val default_config : config
(** Default query params, staleness bound of 256 rows. *)

type t

val create : ?config:config -> queries:Genbase.Query.t list -> Live.t -> t
(** Initialize maintainer state from the live view's current contents
    (fast-path sketch construction from the base matrices). *)

val copy : t -> t
(** Deep copy — checkpointing. *)

val on_append : t -> Live.t -> Gb_datagen.Generate.patient -> float array -> unit
val on_update :
  t -> Live.t -> patient_id:int -> gene_id:int -> old_row:float array ->
  unit
(** [old_row] is the patient's full expression row {e before} the update
    (the live view already holds the new value). *)

val on_variants : t -> Live.t -> Gb_datagen.Generate.variant list -> unit
(** New variants of one batch, ascending id order. *)

val flush : t -> Live.t -> unit
(** Batch boundary: runs the buffered Q1 delta-join and folds the
    resulting joint rows into the regression sketch. *)

val refresh : ?force:bool -> t -> Live.t -> Genbase.Query.t -> Genbase.Engine.payload
(** Current answer. Incremental queries (Q1/Q2/Q5/Q6) always reflect
    every applied event; fallback queries (Q3/Q4) serve the cached
    payload unless [force] or the staleness bound was exceeded. *)

val staleness : t -> Genbase.Query.t -> int
(** Rows applied since the query's answer was last materialized — 0 for
    the incremental families. *)

val recomputes : t -> int
(** Fallback recomputations performed so far (both forced and
    staleness-triggered). *)
