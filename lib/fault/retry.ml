type policy = {
  max_attempts : int;
  base_delay_s : float;
  multiplier : float;
  max_delay_s : float;
  jitter : float;
}

let default =
  {
    max_attempts = 4;
    base_delay_s = 0.05;
    multiplier = 2.;
    max_delay_s = 2.;
    jitter = 0.25;
  }

let delay_for policy ~rng ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay_for: attempt";
  let d =
    Float.min policy.max_delay_s
      (policy.base_delay_s
      *. (policy.multiplier ** float_of_int (attempt - 1)))
  in
  d *. (1. +. (policy.jitter *. Gb_util.Prng.uniform rng))

type 'a outcome = { value : 'a; attempts : int; backoff_s : float }

let run ?(policy = default) ~rng ~charge
    ?(retry_on = function Gb_util.Deadline.Timeout -> false | _ -> true) f =
  let backoff = ref 0. in
  let rec go attempt =
    match f ~attempt with
    | value -> { value; attempts = attempt; backoff_s = !backoff }
    | exception e when attempt < policy.max_attempts && retry_on e ->
      let d = delay_for policy ~rng ~attempt in
      backoff := !backoff +. d;
      charge d;
      go (attempt + 1)
  in
  go 1
