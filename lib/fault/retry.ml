type policy = {
  max_attempts : int;
  base_delay_s : float;
  multiplier : float;
  max_delay_s : float;
  jitter : float;
}

let default =
  {
    max_attempts = 4;
    base_delay_s = 0.05;
    multiplier = 2.;
    max_delay_s = 2.;
    jitter = 0.25;
  }

let base_delay policy ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay: attempt";
  Float.min policy.max_delay_s
    (policy.base_delay_s *. (policy.multiplier ** float_of_int (attempt - 1)))

let delay_for policy ~rng ~attempt =
  let d = base_delay policy ~attempt in
  d *. (1. +. (policy.jitter *. Gb_util.Prng.uniform rng))

(* Stateless jitter: a fresh single-shot SplitMix stream keyed on
   (key, attempt), so the schedule for a given request is a pure function
   of its key — two replicas of a client retrying the same request agree
   on every delay without sharing generator state. *)
let delay_for_det policy ~key ~attempt =
  let d = base_delay policy ~attempt in
  let g =
    Gb_util.Prng.create
      (Int64.add
         (Int64.mul (Int64.of_int key) 0x9E3779B97F4A7C15L)
         (Int64.of_int attempt))
  in
  d *. (1. +. (policy.jitter *. Gb_util.Prng.uniform g))

type 'a outcome = { value : 'a; attempts : int; backoff_s : float }

let run ?(policy = default) ~rng ~charge ?remaining
    ?(retry_on = function Gb_util.Deadline.Timeout -> false | _ -> true) f =
  let backoff = ref 0. in
  let rec go attempt =
    match f ~attempt with
    | value -> { value; attempts = attempt; backoff_s = !backoff }
    | exception e when attempt < policy.max_attempts && retry_on e ->
      let d = delay_for policy ~rng ~attempt in
      (* Total-deadline cutoff: when the backoff alone would exhaust the
         remaining budget there is no point charging it — the next
         attempt could only ever time out, so the worst-case tail of a
         failing call stays bounded by the deadline instead of by
         max_attempts * max_delay. *)
      (match remaining with
      | Some rem when d >= rem () -> raise e
      | _ -> ());
      backoff := !backoff +. d;
      charge d;
      go (attempt + 1)
  in
  go 1
