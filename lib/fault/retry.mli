(** Bounded retries with exponential backoff.

    Backoff delays are not slept: they are *charged* through a caller-
    supplied [charge] function, normally [Cluster.advance] or
    [Clock.Sim.advance], so waiting consumes simulated seconds. Because
    charging advances the simulated clock, a deadline armed on that clock
    fires during backoff — retrying is deadline-aware for free. Jitter is
    drawn from an explicit PRNG so a schedule replays identically from a
    seed. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay_s : float;  (** delay before the first retry *)
  multiplier : float;  (** exponential growth per failure *)
  max_delay_s : float;  (** cap on the un-jittered delay *)
  jitter : float;  (** uniform extra delay, as a fraction of the delay *)
}

val default : policy
(** 4 attempts, 50 ms base, doubling, 2 s cap, 25% jitter. *)

val delay_for : policy -> rng:Gb_util.Prng.t -> attempt:int -> float
(** Backoff before the retry that follows the [attempt]-th failure
    (1-based): [base * multiplier^(attempt-1)], capped at [max_delay_s],
    plus jitter. The result is in
    [[d, d * (1 + jitter))] where [d] is the capped deterministic part. *)

val delay_for_det : policy -> key:int -> attempt:int -> float
(** Like {!delay_for} but with stateless jitter: a pure function of
    [(key, attempt)], no generator threading. The serving client keys
    this on the request id so a retry schedule replays identically
    whether or not other requests retried in between. Same bounds as
    {!delay_for}. *)

type 'a outcome = { value : 'a; attempts : int; backoff_s : float }

val run :
  ?policy:policy ->
  rng:Gb_util.Prng.t ->
  charge:(float -> unit) ->
  ?remaining:(unit -> float) ->
  ?retry_on:(exn -> bool) ->
  (attempt:int -> 'a) ->
  'a outcome
(** [run ~rng ~charge f] calls [f ~attempt:1]; on an exception for which
    [retry_on] holds (default: everything except
    [Gb_util.Deadline.Timeout]), charges the backoff delay and tries
    again, up to [policy.max_attempts] attempts, then re-raises the last
    exception.

    [remaining] is the total-deadline cutoff: when the next backoff
    delay is at least [remaining ()] seconds the failure is re-raised
    immediately instead of charging a sleep that could only end in a
    timeout — without it the worst case is the full
    [max_attempts * max_delay_s] tail even with a nearly-expired
    deadline. *)
