(** Deterministic, seedable fault plans for the simulated cluster and the
    MapReduce runtime.

    A plan is a fixed set of injection points — node crashes at a given
    superstep, straggler slowdowns, transient per-node memory-allocation
    failures, dropped or delayed messages, failed MapReduce task attempts
    — either listed explicitly ({!of_events}) or scattered pseudo-randomly
    from a seed ({!scatter}). The same plan always injects the same faults
    at the same points, so a faulty run can be replayed bit-for-bit. *)

type event =
  | Node_crash of { node : int; superstep : int }
      (** The node is lost at the start of [superstep] and never rejoins;
          its work moves to survivors. *)
  | Straggler of { node : int; superstep : int; factor : float }
      (** The node's compute in that superstep runs [factor] times slower
          (degraded disk / background load). *)
  | Transient_oom of { node : int; superstep : int; failures : int }
      (** The node's task in that superstep fails [failures] times with a
          memory-allocation error before succeeding on a retry. *)
  | Message_drop of { op : int }
      (** The [op]-th communication operation loses its payload and must
          be retransmitted after a timeout. *)
  | Message_delay of { op : int; seconds : float }
      (** The [op]-th communication operation is delayed by [seconds]. *)
  | Task_fail of { job : int; failures : int }
      (** The [job]-th MapReduce job has a task attempt fail [failures]
          times (each re-attempt re-runs the work). *)

type plan = { seed : int64; events : event list }

exception Injected_oom of string
(** Raised when injected memory failures outlast the retry budget —
    mapped by the harness to an out-of-memory ("infinite") outcome. *)

exception Node_lost of string
(** Raised when a fault cannot be recovered from (e.g. every node in the
    cluster has crashed) — mapped by the harness to an errored outcome. *)

val empty : plan
val is_empty : plan -> bool

val of_events : ?seed:int64 -> event list -> plan

val scatter :
  seed:int64 ->
  nodes:int ->
  supersteps:int ->
  ?crash_p:float ->
  ?straggler_p:float ->
  ?straggler_factor:float ->
  ?oom_p:float ->
  ?comm_ops:int ->
  ?drop_p:float ->
  ?delay_p:float ->
  ?delay_s:float ->
  ?jobs:int ->
  ?task_fail_p:float ->
  unit ->
  plan
(** Scatter faults over a [nodes] x [supersteps] grid (plus [comm_ops]
    communication operations and [jobs] MapReduce jobs) with the given
    per-cell probabilities. Fully determined by [seed]; all probabilities
    default to [0.]. *)

(** {1 Plan queries} — all pure; the executors consult these at each
    injection point. *)

val crash_at : plan -> node:int -> superstep:int -> bool
val slowdown : plan -> node:int -> superstep:int -> float
(** Product of straggler factors for that cell; [1.] when none. *)

val oom_failures : plan -> node:int -> superstep:int -> int
val dropped : plan -> op:int -> bool
val delay : plan -> op:int -> float
val task_failures : plan -> job:int -> int

val rng : plan -> Gb_util.Prng.t
(** A fresh generator derived from the plan seed — used for backoff
    jitter so that replaying a plan reproduces the same schedule. *)

val pp : Format.formatter -> plan -> unit
