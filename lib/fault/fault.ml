module Prng = Gb_util.Prng

type event =
  | Node_crash of { node : int; superstep : int }
  | Straggler of { node : int; superstep : int; factor : float }
  | Transient_oom of { node : int; superstep : int; failures : int }
  | Message_drop of { op : int }
  | Message_delay of { op : int; seconds : float }
  | Task_fail of { job : int; failures : int }

type plan = { seed : int64; events : event list }

exception Injected_oom of string
exception Node_lost of string

let empty = { seed = 0L; events = [] }
let is_empty p = p.events = []
let of_events ?(seed = 0L) events = { seed; events }

let scatter ~seed ~nodes ~supersteps ?(crash_p = 0.) ?(straggler_p = 0.)
    ?(straggler_factor = 4.) ?(oom_p = 0.) ?(comm_ops = 0) ?(drop_p = 0.)
    ?(delay_p = 0.) ?(delay_s = 0.05) ?(jobs = 0) ?(task_fail_p = 0.) () =
  if nodes < 1 then invalid_arg "Fault.scatter: nodes";
  let g = Prng.create seed in
  let events = ref [] in
  let add e = events := e :: !events in
  (* One uniform draw per grid cell keeps the plan independent of which
     probabilities are zero, so enabling one fault class does not reshuffle
     the others. At most one compute fault per (node, superstep). *)
  for superstep = 0 to supersteps - 1 do
    for node = 0 to nodes - 1 do
      let u = Prng.uniform g in
      if u < crash_p then add (Node_crash { node; superstep })
      else if u < crash_p +. straggler_p then
        add (Straggler { node; superstep; factor = straggler_factor })
      else if u < crash_p +. straggler_p +. oom_p then
        add (Transient_oom { node; superstep; failures = 1 })
    done
  done;
  for op = 0 to comm_ops - 1 do
    let u = Prng.uniform g in
    if u < drop_p then add (Message_drop { op })
    else if u < drop_p +. delay_p then
      add (Message_delay { op; seconds = delay_s })
  done;
  for job = 0 to jobs - 1 do
    if Prng.uniform g < task_fail_p then add (Task_fail { job; failures = 1 })
  done;
  { seed; events = List.rev !events }

let crash_at p ~node ~superstep =
  List.exists
    (function
      | Node_crash c -> c.node = node && c.superstep = superstep
      | _ -> false)
    p.events

let slowdown p ~node ~superstep =
  List.fold_left
    (fun acc -> function
      | Straggler s when s.node = node && s.superstep = superstep ->
        acc *. s.factor
      | _ -> acc)
    1. p.events

let oom_failures p ~node ~superstep =
  List.fold_left
    (fun acc -> function
      | Transient_oom o when o.node = node && o.superstep = superstep ->
        acc + o.failures
      | _ -> acc)
    0 p.events

let dropped p ~op =
  List.exists (function Message_drop d -> d.op = op | _ -> false) p.events

let delay p ~op =
  List.fold_left
    (fun acc -> function
      | Message_delay d when d.op = op -> acc +. d.seconds
      | _ -> acc)
    0. p.events

let task_failures p ~job =
  List.fold_left
    (fun acc -> function
      | Task_fail f when f.job = job -> acc + f.failures
      | _ -> acc)
    0 p.events

let rng p = Prng.create (Int64.logxor p.seed 0x9E3779B97F4A7C15L)

let pp_event fmt = function
  | Node_crash c ->
    Format.fprintf fmt "crash(node=%d,step=%d)" c.node c.superstep
  | Straggler s ->
    Format.fprintf fmt "straggler(node=%d,step=%d,x%.1f)" s.node s.superstep
      s.factor
  | Transient_oom o ->
    Format.fprintf fmt "oom(node=%d,step=%d,fails=%d)" o.node o.superstep
      o.failures
  | Message_drop d -> Format.fprintf fmt "drop(op=%d)" d.op
  | Message_delay d ->
    Format.fprintf fmt "delay(op=%d,%.3fs)" d.op d.seconds
  | Task_fail f -> Format.fprintf fmt "task-fail(job=%d,fails=%d)" f.job f.failures

let pp fmt p =
  Format.fprintf fmt "plan[seed=%Ld;%a]" p.seed
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       pp_event)
    p.events
