module Mat = Gb_linalg.Mat

type bicluster = { rows : int array; cols : int array; msr : float }

type config = {
  delta : float;
  alpha : float;
  n_clusters : int;
  min_rows : int;
  min_cols : int;
  seed : int64;
}

let default_config =
  {
    delta = 0.05;
    alpha = 1.2;
    n_clusters = 4;
    min_rows = 2;
    min_cols = 2;
    seed = 0xB1C1L;
  }

(* State over boolean membership masks; means are recomputed per sweep,
   which keeps each sweep O(m n) and the code obviously correct. *)
type state = {
  m : Mat.t;
  row_in : bool array;
  col_in : bool array;
  mutable nrows : int;
  mutable ncols : int;
}

let members mask =
  let out = ref [] in
  for i = Array.length mask - 1 downto 0 do
    if mask.(i) then out := i :: !out
  done;
  Array.of_list !out

type sweep = {
  h : float; (* overall MSR *)
  row_means : float array;
  col_means : float array;
  all_mean : float;
  row_msr : float array;
  col_msr : float array;
}

let sweep st =
  let nr, nc = Mat.dims st.m in
  let row_means = Array.make nr 0. in
  let col_means = Array.make nc 0. in
  let total = ref 0. in
  for i = 0 to nr - 1 do
    if st.row_in.(i) then
      for j = 0 to nc - 1 do
        if st.col_in.(j) then begin
          let v = Mat.unsafe_get st.m i j in
          row_means.(i) <- row_means.(i) +. v;
          col_means.(j) <- col_means.(j) +. v;
          total := !total +. v
        end
      done
  done;
  let fr = float_of_int st.ncols and fc = float_of_int st.nrows in
  for i = 0 to nr - 1 do
    if st.row_in.(i) then row_means.(i) <- row_means.(i) /. fr
  done;
  for j = 0 to nc - 1 do
    if st.col_in.(j) then col_means.(j) <- col_means.(j) /. fc
  done;
  let all_mean = !total /. (fr *. fc) in
  let row_msr = Array.make nr 0. in
  let col_msr = Array.make nc 0. in
  let acc = ref 0. in
  for i = 0 to nr - 1 do
    if st.row_in.(i) then
      for j = 0 to nc - 1 do
        if st.col_in.(j) then begin
          let r =
            Mat.unsafe_get st.m i j -. row_means.(i) -. col_means.(j)
            +. all_mean
          in
          let r2 = r *. r in
          row_msr.(i) <- row_msr.(i) +. r2;
          col_msr.(j) <- col_msr.(j) +. r2;
          acc := !acc +. r2
        end
      done
  done;
  for i = 0 to nr - 1 do
    if st.row_in.(i) then row_msr.(i) <- row_msr.(i) /. fr
  done;
  for j = 0 to nc - 1 do
    if st.col_in.(j) then col_msr.(j) <- col_msr.(j) /. fc
  done;
  let h = !acc /. (fr *. fc) in
  { h; row_means; col_means; all_mean; row_msr; col_msr }

let mean_squared_residue m rows cols =
  if Array.length rows = 0 || Array.length cols = 0 then 0.
  else begin
    let nr, nc = Mat.dims m in
    let row_in = Array.make nr false and col_in = Array.make nc false in
    Array.iter (fun i -> row_in.(i) <- true) rows;
    Array.iter (fun j -> col_in.(j) <- true) cols;
    let st =
      { m; row_in; col_in; nrows = Array.length rows; ncols = Array.length cols }
    in
    (sweep st).h
  end

(* Phase 1: multiple node deletion — drop every row/col whose residue
   exceeds alpha * H in one pass (only applied while the dimension is
   large enough for the pass to pay off). *)
let multiple_deletion cfg st =
  let progressed = ref true in
  let s = ref (sweep st) in
  while !s.h > cfg.delta && !progressed do
    Gb_util.Deadline.Ambient.checkpoint ();
    progressed := false;
    if st.nrows > 100 then begin
      let cutoff = cfg.alpha *. !s.h in
      for i = 0 to Array.length st.row_in - 1 do
        if st.row_in.(i) && !s.row_msr.(i) > cutoff && st.nrows > cfg.min_rows
        then begin
          st.row_in.(i) <- false;
          st.nrows <- st.nrows - 1;
          progressed := true
        end
      done
    end;
    if !progressed then s := sweep st;
    if st.ncols > 100 then begin
      let cutoff = cfg.alpha *. !s.h in
      let removed = ref false in
      for j = 0 to Array.length st.col_in - 1 do
        if st.col_in.(j) && !s.col_msr.(j) > cutoff && st.ncols > cfg.min_cols
        then begin
          st.col_in.(j) <- false;
          st.ncols <- st.ncols - 1;
          removed := true
        end
      done;
      if !removed then begin
        progressed := true;
        s := sweep st
      end
    end
  done;
  !s

(* Phase 2: single node deletion — remove the single worst row or column
   until the residue target is met. *)
let single_deletion cfg st s0 =
  let s = ref s0 in
  let continue_ = ref true in
  while !s.h > cfg.delta && !continue_ do
    Gb_util.Deadline.Ambient.checkpoint ();
    let worst_row = ref (-1) and worst_row_v = ref neg_infinity in
    if st.nrows > cfg.min_rows then
      for i = 0 to Array.length st.row_in - 1 do
        if st.row_in.(i) && !s.row_msr.(i) > !worst_row_v then begin
          worst_row := i;
          worst_row_v := !s.row_msr.(i)
        end
      done;
    let worst_col = ref (-1) and worst_col_v = ref neg_infinity in
    if st.ncols > cfg.min_cols then
      for j = 0 to Array.length st.col_in - 1 do
        if st.col_in.(j) && !s.col_msr.(j) > !worst_col_v then begin
          worst_col := j;
          worst_col_v := !s.col_msr.(j)
        end
      done;
    if !worst_row >= 0 && !worst_row_v >= !worst_col_v then begin
      st.row_in.(!worst_row) <- false;
      st.nrows <- st.nrows - 1;
      s := sweep st
    end
    else if !worst_col >= 0 then begin
      st.col_in.(!worst_col) <- false;
      st.ncols <- st.ncols - 1;
      s := sweep st
    end
    else continue_ := false
  done;
  !s

(* Phase 3: node addition — re-admit columns/rows whose residue against the
   current bicluster does not exceed its MSR. *)
let node_addition st s0 =
  let nr, nc = Mat.dims st.m in
  let s = ref s0 in
  let changed = ref true in
  while !changed do
    Gb_util.Deadline.Ambient.checkpoint ();
    changed := false;
    (* Column addition. *)
    for j = 0 to nc - 1 do
      if not st.col_in.(j) then begin
        let acc = ref 0. and cm = ref 0. in
        for i = 0 to nr - 1 do
          if st.row_in.(i) then cm := !cm +. Mat.unsafe_get st.m i j
        done;
        let cm = !cm /. float_of_int st.nrows in
        for i = 0 to nr - 1 do
          if st.row_in.(i) then begin
            let r =
              Mat.unsafe_get st.m i j -. !s.row_means.(i) -. cm +. !s.all_mean
            in
            acc := !acc +. (r *. r)
          end
        done;
        let e = !acc /. float_of_int st.nrows in
        if e <= !s.h then begin
          st.col_in.(j) <- true;
          st.ncols <- st.ncols + 1;
          changed := true
        end
      end
    done;
    if !changed then s := sweep st;
    (* Row addition. *)
    let row_changed = ref false in
    for i = 0 to nr - 1 do
      if not st.row_in.(i) then begin
        let acc = ref 0. and rm = ref 0. in
        for j = 0 to nc - 1 do
          if st.col_in.(j) then rm := !rm +. Mat.unsafe_get st.m i j
        done;
        let rm = !rm /. float_of_int st.ncols in
        for j = 0 to nc - 1 do
          if st.col_in.(j) then begin
            let r =
              Mat.unsafe_get st.m i j -. rm -. !s.col_means.(j) +. !s.all_mean
            in
            acc := !acc +. (r *. r)
          end
        done;
        let d = !acc /. float_of_int st.ncols in
        if d <= !s.h then begin
          st.row_in.(i) <- true;
          st.nrows <- st.nrows + 1;
          row_changed := true
        end
      end
    done;
    if !row_changed then begin
      changed := true;
      s := sweep st
    end
  done;
  !s

let data_range m =
  let lo = ref infinity and hi = ref neg_infinity in
  Mat.iteri
    (fun _ _ v ->
      if v < !lo then lo := v;
      if v > !hi then hi := v)
    m;
  if !lo > !hi then (0., 1.) else (!lo, !hi)

let run ?(config = default_config) input =
  let nr, nc = Mat.dims input in
  if nr < config.min_rows || nc < config.min_cols then []
  else begin
    let work = Mat.copy input in
    let rng = Gb_util.Prng.create config.seed in
    let lo, hi = data_range input in
    let found = ref [] in
    (try
       for _ = 1 to config.n_clusters do
         let st =
           {
             m = work;
             row_in = Array.make nr true;
             col_in = Array.make nc true;
             nrows = nr;
             ncols = nc;
           }
         in
         let s = multiple_deletion config st in
         let s = single_deletion config st s in
         let s = node_addition st s in
         let rows = members st.row_in and cols = members st.col_in in
         if Array.length rows < config.min_rows
            || Array.length cols < config.min_cols
         then raise Exit;
         found := { rows; cols; msr = s.h } :: !found;
         (* Mask the found bicluster with uniform noise so the next search
            discovers different structure. *)
         Array.iter
           (fun i ->
             Array.iter
               (fun j ->
                 Mat.unsafe_set work i j
                   (lo +. Gb_util.Prng.float rng (Float.max 1e-9 (hi -. lo))))
               cols)
           rows
       done
     with Exit -> ());
    List.rev !found
  end
