(* Structured bench output and the noise-aware regression diff.

   Every bench section emits one BENCH_<section>.json file: a schema-
   versioned header (section, git rev, quick flag) plus one record per
   measured configuration. Records carry the sample statistics the diff
   needs (median is the comparison statistic; mean/p95/min/max are for
   humans) and any counters captured alongside (gc.* deltas, row counts,
   phase seconds). [diff] compares two files key-by-key with a relative
   threshold AND a unit-aware absolute floor, so sub-millisecond jitter
   on a fast benchmark never trips the gate and a real 2x slowdown
   always does. *)

let schema_version = 1

type better = Lower | Higher

type record = {
  name : string;
  engine : string;
  query : string;
  size : string;
  unit_ : string;
  better : better;
  iterations : int;
  mean : float;
  median : float;
  p95 : float;
  min_v : float;
  max_v : float;
  counters : (string * float) list;
}

type file = {
  section : string;
  git_rev : string;
  quick : bool;
  records : record list;
}

(* --- record construction from raw samples --- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let make ~name ?(engine = "") ?(query = "") ?(size = "") ?(unit_ = "s")
    ?(better = Lower) ?(counters = []) samples =
  (* Failed cells report infinite totals; those carry no magnitude to
     compare, so drop them here rather than poisoning the statistics. *)
  let finite = List.filter Float.is_finite samples in
  match finite with
  | [] -> None
  | _ ->
    let sorted = Array.of_list finite in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let sum = Array.fold_left ( +. ) 0. sorted in
    let counters = List.filter (fun (_, v) -> Float.is_finite v) counters in
    Some
      {
        name;
        engine;
        query;
        size;
        unit_;
        better;
        iterations = n;
        mean = sum /. float_of_int n;
        median = percentile sorted 0.5;
        p95 = percentile sorted 0.95;
        min_v = sorted.(0);
        max_v = sorted.(n - 1);
        counters;
      }

(* --- git revision discovery ---

   No subprocess: read .git/HEAD, follow one "ref:" indirection into the
   loose ref or packed-refs. GENBASE_GIT_REV overrides (CI detached
   checkouts), "unknown" when nothing resolves. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let packed_ref git_dir ref_name =
  let lines = String.split_on_char '\n' (read_file (Filename.concat git_dir "packed-refs")) in
  List.find_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line (i + 1) (String.length line - i - 1) = ref_name ->
        Some (String.sub line 0 i)
      | _ -> None)
    lines

let rec find_git_dir dir depth =
  if depth > 8 then None
  else
    let cand = Filename.concat dir ".git" in
    if Sys.file_exists cand && Sys.is_directory cand then Some cand
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git_dir parent (depth + 1)

let git_rev () =
  match Sys.getenv_opt "GENBASE_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
    try
      match find_git_dir (Sys.getcwd ()) 0 with
      | None -> "unknown"
      | Some git_dir -> (
        let head = String.trim (read_file (Filename.concat git_dir "HEAD")) in
        match String.length head with
        | n when n > 5 && String.sub head 0 5 = "ref: " -> (
          let ref_name = String.trim (String.sub head 5 (n - 5)) in
          match
            (try Some (String.trim (read_file (Filename.concat git_dir ref_name)))
             with _ -> None)
          with
          | Some sha when sha <> "" -> sha
          | _ -> (
            match (try packed_ref git_dir ref_name with _ -> None) with
            | Some sha -> sha
            | None -> "unknown"))
        | _ -> if head = "" then "unknown" else head)
    with _ -> "unknown")

(* --- JSON serialization --- *)

let better_to_string = function Lower -> "lower" | Higher -> "higher"

let better_of_string = function
  | "higher" -> Higher
  | _ -> Lower

let record_to_json r =
  Json.Obj
    ([
       ("name", Json.JStr r.name);
       ("engine", Json.JStr r.engine);
       ("query", Json.JStr r.query);
       ("size", Json.JStr r.size);
       ("unit", Json.JStr r.unit_);
       ("better", Json.JStr (better_to_string r.better));
       ("iterations", Json.Num (float_of_int r.iterations));
       ("mean", Json.Num r.mean);
       ("median", Json.Num r.median);
       ("p95", Json.Num r.p95);
       ("min", Json.Num r.min_v);
       ("max", Json.Num r.max_v);
     ]
    @
    match r.counters with
    | [] -> []
    | cs -> [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) cs)) ])

(* One record per line inside the records array: committed baselines
   should produce readable git diffs when a single entry moves. *)
let to_string f =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"genbase_bench\":%d,\"section\":\"%s\",\"git_rev\":\"%s\",\"quick\":%b,\"records\":["
       schema_version (Json.escape f.section) (Json.escape f.git_rev) f.quick);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Json.to_string (record_to_json r)))
    f.records;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let ( let* ) = Result.bind

let field name fields =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name fields =
  let* v = field name fields in
  match v with
  | Json.JStr s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected string" name)

let num_field name fields =
  let* v = field name fields in
  match v with
  | Json.Num x -> Ok x
  | Json.Null -> Ok nan (* non-finite values serialize as null *)
  | _ -> Error (Printf.sprintf "field %S: expected number" name)

let record_of_json = function
  | Json.Obj fields ->
    let* name = str_field "name" fields in
    let* engine = str_field "engine" fields in
    let* query = str_field "query" fields in
    let* size = str_field "size" fields in
    let* unit_ = str_field "unit" fields in
    let* better_s = str_field "better" fields in
    let* iterations = num_field "iterations" fields in
    let* mean = num_field "mean" fields in
    let* median = num_field "median" fields in
    let* p95 = num_field "p95" fields in
    let* min_v = num_field "min" fields in
    let* max_v = num_field "max" fields in
    let* counters =
      match List.assoc_opt "counters" fields with
      | None -> Ok []
      | Some (Json.Obj cs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Json.Num x -> Ok ((k, x) :: acc)
            | _ -> Error (Printf.sprintf "counter %S: expected number" k))
          (Ok []) cs
        |> Result.map List.rev
      | Some _ -> Error "field \"counters\": expected object"
    in
    Ok
      {
        name;
        engine;
        query;
        size;
        unit_;
        better = better_of_string better_s;
        iterations = int_of_float iterations;
        mean;
        median;
        p95;
        min_v;
        max_v;
        counters;
      }
  | _ -> Error "record: expected object"

let of_string s =
  let* j = Json.parse s in
  match j with
  | Json.Obj fields ->
    let* v = num_field "genbase_bench" fields in
    if int_of_float v <> schema_version then
      Error
        (Printf.sprintf "unsupported schema version %d (expected %d)"
           (int_of_float v) schema_version)
    else
      let* section = str_field "section" fields in
      let* git_rev = str_field "git_rev" fields in
      let* quick =
        let* q = field "quick" fields in
        match q with
        | Json.JBool b -> Ok b
        | _ -> Error "field \"quick\": expected bool"
      in
      let* recs = field "records" fields in
      let* records =
        match recs with
        | Json.Arr items ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* r = record_of_json item in
              Ok (r :: acc))
            (Ok []) items
          |> Result.map List.rev
        | _ -> Error "field \"records\": expected array"
      in
      Ok { section; git_rev; quick; records }
  | _ -> Error "top level is not an object"

let path_of_section section = Printf.sprintf "BENCH_%s.json" section

let write ?dir ~section ~quick records =
  let f = { section; git_rev = git_rev (); quick; records } in
  let path =
    match dir with
    | None -> path_of_section section
    | Some d -> Filename.concat d (path_of_section section)
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string f));
  path

let read path =
  match (try Ok (read_file path) with Sys_error e -> Error e) with
  | Error e -> Error e
  | Ok s -> (
    match of_string s with
    | Ok f -> Ok f
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

(* --- the diff --- *)

type verdict = Regression | Improvement | Within_noise

type comparison = {
  c_record : record;  (** the candidate-side record *)
  base_median : float;
  cand_median : float;
  change_pct : float;  (** signed; positive = candidate larger *)
  verdict : verdict;
}

type report = {
  threshold_pct : float;
  comparisons : comparison list;
  only_base : record list;
  only_cand : record list;
}

(* The absolute floor under which a relative change is noise regardless
   of percentage: timers and the allocator make the first few hundred
   nanoseconds / few milliseconds of any measurement jitter. *)
let default_min_effect unit_ =
  match unit_ with
  | "s" -> 0.005
  | "ms" -> 5.
  | "ns" -> 500.
  | "pct" | "%" -> 1.0
  | _ -> 0.

let key r = (r.name, r.engine, r.query, r.size, r.unit_)

let diff ?(threshold_pct = 20.) ?(min_effect = default_min_effect) base cand =
  let comparisons =
    List.filter_map
      (fun cr ->
        match List.find_opt (fun br -> key br = key cr) base.records with
        | None -> None
        | Some br ->
          if not (Float.is_finite br.median && Float.is_finite cr.median) then
            None
          else
            let change = cr.median -. br.median in
            let change_pct =
              if br.median <> 0. then 100. *. change /. Float.abs br.median
              else if change = 0. then 0.
              else Float.infinity *. (if change > 0. then 1. else -1.)
            in
            (* "worse" in the record's own direction: for Lower-is-better
               a positive change is worse; for Higher-is-better the sign
               flips. *)
            let worse =
              match cr.better with Lower -> change | Higher -> -.change
            in
            let significant =
              Float.abs change > min_effect cr.unit_
              && Float.abs change_pct > threshold_pct
            in
            let verdict =
              if not significant then Within_noise
              else if worse > 0. then Regression
              else Improvement
            in
            Some
              {
                c_record = cr;
                base_median = br.median;
                cand_median = cr.median;
                change_pct;
                verdict;
              })
      cand.records
  in
  let only_base =
    List.filter
      (fun br -> not (List.exists (fun cr -> key cr = key br) cand.records))
      base.records
  in
  let only_cand =
    List.filter
      (fun cr -> not (List.exists (fun br -> key br = key cr) base.records))
      cand.records
  in
  { threshold_pct; comparisons; only_base; only_cand }

let regressions report =
  List.filter (fun c -> c.verdict = Regression) report.comparisons

let improvements report =
  List.filter (fun c -> c.verdict = Improvement) report.comparisons

let fmt_value unit_ v =
  if not (Float.is_finite v) then "INF"
  else
    match unit_ with
    | "s" -> Printf.sprintf "%.6g" v
    | "ns" -> Printf.sprintf "%.4g" v
    | _ -> Printf.sprintf "%.6g" v

let render_report report =
  let buf = Buffer.create 1024 in
  let label r =
    String.concat "/"
      (List.filter (fun s -> s <> "") [ r.name; r.engine; r.query; r.size ])
  in
  let rows =
    List.map
      (fun c ->
        let r = c.c_record in
        [
          label r;
          c.c_record.unit_;
          fmt_value r.unit_ c.base_median;
          fmt_value r.unit_ c.cand_median;
          (if Float.is_finite c.change_pct then
             Printf.sprintf "%+.1f%%" c.change_pct
           else "n/a");
          (match c.verdict with
          | Regression -> "REGRESSION"
          | Improvement -> "improvement"
          | Within_noise -> "ok");
        ])
      report.comparisons
  in
  if rows <> [] then begin
    Buffer.add_string buf
      (Gb_util.Render.table
         ~headers:[ "benchmark"; "unit"; "base"; "new"; "change"; "verdict" ]
         ~rows);
    Buffer.add_char buf '\n'
  end;
  let names rs = String.concat ", " (List.map label rs) in
  if report.only_base <> [] then
    Buffer.add_string buf
      (Printf.sprintf "only in base (removed?): %s\n" (names report.only_base));
  if report.only_cand <> [] then
    Buffer.add_string buf
      (Printf.sprintf "only in candidate (added): %s\n" (names report.only_cand));
  let n_reg = List.length (regressions report) in
  let n_imp = List.length (improvements report) in
  Buffer.add_string buf
    (Printf.sprintf
       "%d compared, %d regression%s, %d improvement%s (threshold %.0f%% + unit floor)\n"
       (List.length report.comparisons)
       n_reg
       (if n_reg = 1 then "" else "s")
       n_imp
       (if n_imp = 1 then "" else "s")
       report.threshold_pct);
  Buffer.contents buf
