(* Tracing core: hierarchical spans on a wall clock, flat spans charged to
   the simulated clock, instant events, and a process-global collector.

   The whole subsystem hangs off one flag. When disabled (the default)
   every hook reduces to a single load-and-branch and records nothing, so
   fault-free conformance runs stay bit-identical and timings
   unperturbed. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * value) list

type track = Wall | Sim

type span = {
  id : int;
  parent : int;  (** span id, or -1 for a root *)
  name : string;
  cat : string;
  track : track;
  tid : int;  (** 0 = main; cluster nodes use 1-based ranks *)
  t0 : float;  (** seconds since the trace epoch (wall) or sim-clock time *)
  dur : float;
  attrs : attrs;
}

type event =
  | Span_ev of span
  | Instant_ev of { name : string; track : track; tid : int; ts : float; attrs : attrs }

let string_of_value = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

(* --- global state ---

   Domain-safety: the enabled flag and span-id source are atomics, the
   event buffer sits behind a mutex, and the span stack lives in
   domain-local storage so pool workers nest their own spans without
   seeing each other's frames. Each domain also carries a trace tid
   (set once by the pool when it spawns a worker) so wall spans land on
   per-domain tracks, reusing the per-node tid convention the simulated
   engines already have. *)

(* One atomic word carries every capture mode, so the fully-disabled
   hook is still a single load-and-branch (the PR-3 overhead contract):
   bit 0 is the in-memory collector, bit 1 the flight-recorder sink. *)
let collector_bit = 1
let recorder_bit = 2

let flags = Atomic.make 0

let set_bit bit b =
  let rec go () =
    let old = Atomic.get flags in
    let next = if b then old lor bit else old land lnot bit in
    if not (Atomic.compare_and_set flags old next) then go ()
  in
  go ()

(* The recorder installs itself here once at [Recorder.start]; the ref
   is only read when the recorder bit is set, so the default never
   runs. *)
let sink : (event -> unit) ref = ref (fun _ -> ())
let set_sink f = sink := f

let epoch = ref (Unix.gettimeofday ())

(* Guards [buf] and [count]; every reader/writer of the event stream
   takes it. Uncontended in the sequential default. *)
let collector_m = Mutex.create ()

let buf : event list ref = ref []
let count = ref 0
let next_id = Atomic.make 0

type frame = { f_id : int; f_t0 : float }

(* One span stack per domain. The [ref] is created per domain on first
   use; resetting clears only the calling domain's stack, which is fine
   because worker stacks are balanced between tasks. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

(* Trace track id of the calling domain: 0 for the main domain, lane
   numbers for pool workers. *)
let domain_tid_key = Domain.DLS.new_key (fun () -> 0)
let domain_tid () = Domain.DLS.get domain_tid_key
let set_domain_tid t = Domain.DLS.set domain_tid_key t

let enabled () = Atomic.get flags land collector_bit <> 0
let set_enabled b = set_bit collector_bit b

let recording () = Atomic.get flags land recorder_bit <> 0
let set_recording b = set_bit recorder_bit b

let active () = Atomic.get flags <> 0

let reset () =
  Mutex.lock collector_m;
  buf := [];
  count := 0;
  Mutex.unlock collector_m;
  Atomic.set next_id 0;
  (stack ()) := [];
  epoch := Unix.gettimeofday ()

let now () = Unix.gettimeofday () -. !epoch

let record ev =
  let f = Atomic.get flags in
  if f land collector_bit <> 0 then begin
    Mutex.lock collector_m;
    buf := ev :: !buf;
    incr count;
    Mutex.unlock collector_m
  end;
  if f land recorder_bit <> 0 then !sink ev

let events () =
  Mutex.lock collector_m;
  let r = List.rev !buf in
  Mutex.unlock collector_m;
  r

let event_count () =
  Mutex.lock collector_m;
  let r = !count in
  Mutex.unlock collector_m;
  r

let mark () = event_count ()

let events_since m =
  let rec take acc n l =
    if n <= 0 then acc
    else match l with [] -> acc | e :: tl -> take (e :: acc) (n - 1) tl
  in
  Mutex.lock collector_m;
  let r = take [] (!count - m) !buf in
  Mutex.unlock collector_m;
  r

let open_depth () = List.length !(stack ())

module Span = struct
  let current_parent () = match !(stack ()) with [] -> -1 | f :: _ -> f.f_id

  let with_ ?(cat = "span") ?(attrs = []) ?attrs_after ?dur_of ~name f =
    if Atomic.get flags = 0 then f ()
    else begin
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = current_parent () in
      let tid = domain_tid () in
      let t0 = now () in
      let stack = stack () in
      stack := { f_id = id; f_t0 = t0 } :: !stack;
      let finish ~error ~dur =
        (* Pop our frame; if a callee leaked frames (it would have to
           bypass [with_] to do so), discard them too so the stack stays
           balanced for our callers. *)
        let rec pop = function
          | f :: rest -> if f.f_id = id then rest else pop rest
          | [] -> []
        in
        stack := pop !stack;
        (* Close-time attributes (the GC profiler's delta hook). A raising
           thunk must not mask the span or a propagating exception. *)
        let attrs =
          match attrs_after with
          | None -> attrs
          | Some g -> (try g () with _ -> []) @ attrs
        in
        let attrs = if error then ("error", Bool true) :: attrs else attrs in
        record
          (Span_ev { id; parent; name; cat; track = Wall; tid; t0; dur; attrs })
      in
      match f () with
      | r ->
        let dur =
          match dur_of with
          | Some g -> (
            match g r with Some d -> d | None -> now () -. t0)
          | None -> now () -. t0
        in
        finish ~error:false ~dur;
        r
      | exception e ->
        finish ~error:true ~dur:(now () -. t0);
        raise e
    end

  let emit ?(cat = "span") ?(attrs = []) ?(track = Sim) ?tid ~name ~t0 ~t1 () =
    if Atomic.get flags <> 0 then begin
      (* Wall emits default to the emitting domain's track; Sim spans
         keep the explicit per-node tid convention (default 0). *)
      let tid =
        match tid with
        | Some t -> t
        | None -> ( match track with Wall -> domain_tid () | Sim -> 0)
      in
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = match track with Wall -> current_parent () | Sim -> -1 in
      record
        (Span_ev
           {
             id;
             parent;
             name;
             cat;
             track;
             tid;
             t0;
             dur = Float.max 0. (t1 -. t0);
             attrs;
           })
    end

  let instant ?(attrs = []) ?(track = Wall) ?tid ?ts ~name () =
    if Atomic.get flags <> 0 then begin
      let tid =
        match tid with
        | Some t -> t
        | None -> ( match track with Wall -> domain_tid () | Sim -> 0)
      in
      let ts = match ts with Some t -> t | None -> now () in
      record (Instant_ev { name; track; tid; ts; attrs })
    end
end

module Log = struct
  let line ?sink msg =
    (match sink with
    | None -> ()
    | Some f ->
      f (Printf.sprintf "[+%8.3fs] %s" (Unix.gettimeofday () -. !epoch) msg));
    if Atomic.get flags <> 0 then
      record
        (Instant_ev
           {
             name = msg;
             track = Wall;
             tid = domain_tid ();
             ts = now ();
             attrs = [ ("kind", Str "log") ];
           })
end
