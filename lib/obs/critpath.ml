(* Critical-path blame decomposition over request-scoped traces. See the
   mli for the segment taxonomy and the exactness argument.

   The decomposition is a tiling: anchor tiles come from the request's
   queue/exec spans (exec descends into child spans via parent links so
   engine phases on the critical path get their own labels), expired
   queue waits are closed from admit/expire instant pairs, and the gaps
   left between tiles are labeled from the latest preceding retry
   instant. Tiles share boundaries, so raw durations sum to e2e up to
   rounding; the last segment absorbs the rounding by construction. *)

let attr_int k attrs =
  match List.assoc_opt k attrs with Some (Obs.Int i) -> Some i | _ -> None

let attr_float k attrs =
  match List.assoc_opt k attrs with
  | Some (Obs.Float f) -> Some f
  | Some (Obs.Int i) -> Some (float_of_int i)
  | _ -> None

let attr_str k attrs =
  match List.assoc_opt k attrs with Some (Obs.Str s) -> Some s | _ -> None

let attrs_of = function
  | Obs.Span_ev s -> s.Obs.attrs
  | Obs.Instant_ev i -> i.attrs

let trace_of ev = attr_int "trace" (attrs_of ev)

type request = {
  r_trace : int;
  r_engine : string;
  r_start : float;
  r_finish : float;
  r_e2e : float;
  r_ok : bool;
  r_attempts : int;
  r_sheds : int;
  r_blame : (string * float) list;
}

(* --- span-tree descent ---

   Tiles of [t0, t1] for one span: children (by parent id) sorted by
   start, clipped to the parent window and to the running cursor; the
   span's own uncovered time keeps the span's label. *)

let is_exec name = name = "exec" || name = "serve.exec"

let rec span_tiles children label (s : Obs.span) =
  let t0 = s.Obs.t0 and t1 = s.Obs.t0 +. s.Obs.dur in
  let kids =
    (match Hashtbl.find_opt children s.Obs.id with Some l -> l | None -> [])
    |> List.sort (fun a b -> compare (a.Obs.t0, a.Obs.id) (b.Obs.t0, b.Obs.id))
  in
  let cursor = ref t0 in
  let out = ref [] in
  List.iter
    (fun (k : Obs.span) ->
      let k0 = Float.max !cursor k.Obs.t0
      and k1 = Float.min t1 (k.Obs.t0 +. k.Obs.dur) in
      if k1 > !cursor then begin
        if k0 > !cursor then out := (!cursor, k0, label) :: !out;
        let sub = span_tiles children k.Obs.name { k with Obs.t0 = k0; dur = k1 -. k0 } in
        out := List.rev_append sub !out;
        cursor := k1
      end)
    kids;
  if t1 > !cursor then out := (!cursor, t1, label) :: !out;
  List.rev !out

(* --- per-trace decomposition --- *)

let close_blame ~e2e tiles_labels =
  (* Aggregate per label preserving first-appearance order, then make
     the fold exact: the last label's duration is e2e minus the fold of
     the others. *)
  let order = ref [] in
  let tbl : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (label, d) ->
      match Hashtbl.find_opt tbl label with
      | Some r -> r := !r +. d
      | None ->
        Hashtbl.add tbl label (ref d);
        order := label :: !order)
    tiles_labels;
  match List.rev !order with
  | [] -> []
  | labels ->
    let rec split acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | l :: tl -> split (l :: acc) tl
    in
    let init, last = split [] labels in
    let init = List.map (fun l -> (l, !(Hashtbl.find tbl l))) init in
    let s = List.fold_left (fun acc (_, d) -> acc +. d) 0. init in
    init @ [ (last, e2e -. s) ]

let analyze_trace children t evs =
  let spans =
    List.filter_map (function Obs.Span_ev s -> Some s | _ -> None) evs
  in
  (* (name, ts, attrs) projections of the trace's instant events *)
  let instants =
    List.filter_map
      (function
        | Obs.Instant_ev { name; ts; attrs; _ } -> Some (name, ts, attrs)
        | _ -> None)
      evs
  in
  let times =
    List.concat_map (fun (s : Obs.span) -> [ s.Obs.t0; s.Obs.t0 +. s.Obs.dur ]) spans
    @ List.map (fun (_, ts, _) -> ts) instants
  in
  match times with
  | [] -> None
  | _ :: _ ->
    let first = List.fold_left Float.min infinity times in
    let last = List.fold_left Float.max neg_infinity times in
    let e2e = last -. first in
    (* Anchor tiles from spans. *)
    let span_anchor (s : Obs.span) =
      if s.Obs.name = "queue" then begin
        let t1 = s.Obs.t0 +. s.Obs.dur in
        match attr_float "mem_wait_s" s.Obs.attrs with
        | Some m when m > 0. && m <= s.Obs.dur ->
          [ (s.Obs.t0, t1 -. m, "queue"); (t1 -. m, t1, "mem_wait") ]
        | _ -> [ (s.Obs.t0, t1, "queue") ]
      end
      else if is_exec s.Obs.name then span_tiles children "exec" s
      else if s.Obs.parent = -1 then span_tiles children s.Obs.name s
      else []
      (* non-root spans with a trace attr are reached through their
         parent's descent; skipping them avoids double-counting *)
    in
    let expire_tiles =
      (* queued-then-expired attempts emit no queue span; close their
         wait from the admit/expire pair, matched by request id. *)
      List.filter_map
        (fun (name, ts, attrs) ->
          if name <> "serve.expire" then None
          else
            match attr_int "id" attrs with
            | None -> None
            | Some rid ->
              List.find_map
                (fun (aname, ats, aattrs) ->
                  if aname = "serve.admit" && attr_int "id" aattrs = Some rid
                  then Some (ats, ts, "queue")
                  else None)
                instants)
        instants
      |> List.filter (fun (a, b, _) -> b > a)
    in
    let anchors =
      List.concat_map span_anchor spans @ expire_tiles
      |> List.sort (fun (a0, a1, _) (b0, b1, _) -> compare (a0, a1) (b0, b1))
    in
    (* Gap labels from retry instants: a backoff gap after a
       breaker-open shed is breaker cooldown, anything else is retry
       backoff. *)
    let markers =
      List.filter_map
        (fun (name, ts, attrs) ->
          if name <> "client.retry" then None
          else
            let label =
              match attr_str "reason" attrs with
              | Some "shed:breaker_open" -> "breaker_cooldown"
              | _ -> "retry_backoff"
            in
            Some (ts, label))
        instants
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let gap_label upto =
      List.fold_left
        (fun acc (ts, l) -> if ts <= upto +. 1e-12 then Some l else acc)
        None markers
      |> Option.value ~default:"other"
    in
    let cursor = ref first in
    let tiles = ref [] in
    List.iter
      (fun (a, b, label) ->
        if b > !cursor then begin
          let a = Float.max a !cursor in
          if a > !cursor then tiles := (gap_label a, a -. !cursor) :: !tiles;
          tiles := (label, b -. a) :: !tiles;
          cursor := b
        end)
      anchors;
    if last > !cursor then tiles := (gap_label last, last -. !cursor) :: !tiles;
    let blame = close_blame ~e2e (List.rev !tiles) in
    let engine =
      List.fold_left
        (fun acc ev ->
          match acc with
          | Some _ -> acc
          | None -> attr_str "engine" (attrs_of ev))
        None evs
      |> Option.value ~default:"?"
    in
    let ok =
      List.exists
        (fun (s : Obs.span) ->
          is_exec s.Obs.name
          &&
          match List.assoc_opt "ok" s.Obs.attrs with
          | Some (Obs.Bool b) -> b
          | _ -> not (List.mem_assoc "error" s.Obs.attrs))
        spans
    in
    let attempts =
      List.fold_left
        (fun acc ev ->
          match attr_int "attempt" (attrs_of ev) with
          | Some a -> max acc a
          | None -> acc)
        1 evs
    in
    let sheds =
      List.length
        (List.filter
           (fun (name, _, attrs) ->
             name = "serve.admit"
             &&
             match attr_str "decision" attrs with
             | Some d -> String.length d >= 4 && String.sub d 0 4 = "shed"
             | None -> false)
           instants)
    in
    Some
      {
        r_trace = t;
        r_engine = engine;
        r_start = first;
        r_finish = last;
        r_e2e = e2e;
        r_ok = ok;
        r_attempts = attempts;
        r_sheds = sheds;
        r_blame = blame;
      }

let requests events =
  (* Child index over ALL spans (engine phases under a live exec span
     carry no trace attr, only a parent link). *)
  let children : (int, Obs.span list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | Obs.Span_ev s when s.Obs.parent >= 0 ->
        let prev =
          match Hashtbl.find_opt children s.Obs.parent with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace children s.Obs.parent (s :: prev)
      | _ -> ())
    events;
  let by_trace : (int, Obs.event list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match trace_of ev with
      | None -> ()
      | Some t ->
        (match Hashtbl.find_opt by_trace t with
        | Some l -> Hashtbl.replace by_trace t (ev :: l)
        | None ->
          Hashtbl.add by_trace t [ ev ];
          order := t :: !order))
    events;
  List.sort compare !order
  |> List.filter_map (fun t ->
         analyze_trace children t (List.rev (Hashtbl.find by_trace t)))

let of_chrome serialized =
  Result.map requests (Trace_export.events_of_chrome serialized)

let blame_total r = List.fold_left (fun acc (_, d) -> acc +. d) 0. r.r_blame

let check reqs =
  let rec go n = function
    | [] -> Ok n
    | r :: tl ->
      let total = blame_total r in
      if total = r.r_e2e then go (n + 1) tl
      else
        Error
          (Printf.sprintf
             "trace %d: blame sum %.17g <> e2e %.17g (diff %.3g)" r.r_trace
             total r.r_e2e (total -. r.r_e2e))
  in
  go 0 reqs

(* --- cross-request profile --- *)

type profile_entry = {
  p_label : string;
  p_requests : int;
  p_total : float;
  p_mean_share : float;
  p_p50_share : float;
  p_p99_share : float;
}

(* Nearest-rank quantile over a sorted array (gb_obs cannot depend on
   gb_stats). *)
let quantile p arr =
  let n = Array.length arr in
  if n = 0 then 0.
  else
    let idx = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) idx))

let profile reqs =
  let labels = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (l, _) -> if not (List.mem l !labels) then labels := l :: !labels)
        r.r_blame)
    reqs;
  !labels |> List.sort compare
  |> List.map (fun label ->
         let present = ref 0 and total = ref 0. in
         let shares =
           List.map
             (fun r ->
               match List.assoc_opt label r.r_blame with
               | Some d ->
                 incr present;
                 total := !total +. d;
                 if r.r_e2e > 0. then d /. r.r_e2e else 0.
               | None -> 0.)
             reqs
           |> Array.of_list
         in
         Array.sort compare shares;
         let n = Array.length shares in
         let mean =
           if n = 0 then 0.
           else Array.fold_left ( +. ) 0. shares /. float_of_int n
         in
         {
           p_label = label;
           p_requests = !present;
           p_total = !total;
           p_mean_share = mean;
           p_p50_share = quantile 0.50 shares;
           p_p99_share = quantile 0.99 shares;
         })
  |> List.sort (fun a b ->
         match compare b.p_total a.p_total with
         | 0 -> compare a.p_label b.p_label
         | c -> c)

(* --- trace diff --- *)

type diff_entry = {
  d_label : string;
  d_base_mean : float;
  d_new_mean : float;
  d_delta : float;
}

let mean_blame reqs =
  let n = List.length reqs in
  if n = 0 then []
  else
    let tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun r ->
        List.iter
          (fun (l, d) ->
            match Hashtbl.find_opt tbl l with
            | Some x -> x := !x +. d
            | None -> Hashtbl.add tbl l (ref d))
          r.r_blame)
      reqs;
    let e2e = List.fold_left (fun acc r -> acc +. r.r_e2e) 0. reqs in
    ("e2e", e2e /. float_of_int n)
    :: (Hashtbl.fold (fun l x acc -> (l, !x /. float_of_int n) :: acc) tbl []
       |> List.sort compare)

let diff base new_ =
  let b = mean_blame base and n = mean_blame new_ in
  let labels =
    List.sort_uniq compare (List.map fst b @ List.map fst n)
  in
  List.map
    (fun label ->
      let get l = Option.value ~default:0. (List.assoc_opt label l) in
      let bm = get b and nm = get n in
      { d_label = label; d_base_mean = bm; d_new_mean = nm; d_delta = nm -. bm })
    labels
  |> List.sort (fun a b ->
         match compare (Float.abs b.d_delta) (Float.abs a.d_delta) with
         | 0 -> compare a.d_label b.d_label
         | c -> c)

(* --- renderers --- *)

let render_requests ?(limit = 20) reqs =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%8s %-10s %10s %3s %3s %3s  %s\n" "trace" "engine"
       "e2e_s" "att" "shd" "ok" "blame");
  List.iteri
    (fun i r ->
      if i < limit then
        Buffer.add_string buf
          (Printf.sprintf "%8d %-10s %10.6f %3d %3d %3s  %s\n" r.r_trace
             r.r_engine r.r_e2e r.r_attempts r.r_sheds
             (if r.r_ok then "yes" else "no")
             (String.concat ", "
                (List.map
                   (fun (l, d) -> Printf.sprintf "%s=%.6f" l d)
                   r.r_blame))))
    reqs;
  let n = List.length reqs in
  if n > limit then
    Buffer.add_string buf (Printf.sprintf "... (%d more requests)\n" (n - limit));
  Buffer.contents buf

let render_profile entries =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %8s %12s %7s %7s %7s\n" "segment" "reqs" "total_s"
       "mean%" "p50%" "p99%");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %8d %12.6f %6.1f%% %6.1f%% %6.1f%%\n" e.p_label
           e.p_requests e.p_total
           (100. *. e.p_mean_share)
           (100. *. e.p_p50_share)
           (100. *. e.p_p99_share)))
    entries;
  Buffer.contents buf

let render_diff entries =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %12s %12s %12s\n" "segment" "base_s/req"
       "new_s/req" "delta_s");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %12.6f %12.6f %+12.6f\n" e.d_label
           e.d_base_mean e.d_new_mean e.d_delta))
    entries;
  (match List.find_opt (fun e -> e.d_label <> "e2e") entries with
  | Some top when Float.abs top.d_delta > 0. ->
    Buffer.add_string buf
      (Printf.sprintf "latency moved most in %S: %+.6f s/request\n"
         top.d_label top.d_delta)
  | _ -> Buffer.add_string buf "no latency movement\n");
  Buffer.contents buf
