(** Tracing core: hierarchical wall-clock spans, flat simulated-clock
    spans, instant events, and a process-global in-memory collector.

    Everything is gated on one flag ({!set_enabled}), off by default.
    Disabled hooks reduce to a load-and-branch and record nothing, so
    fault-free conformance runs stay bit-identical and timings
    unperturbed. The subsystem depends only on [Unix.gettimeofday].

    Domain-safety: the collector is shared (mutex-protected) across
    domains, span ids come from an atomic source, and the span stack is
    domain-local ([Domain.DLS]) — pool workers nest their own spans and
    stamp them with a per-domain {!domain_tid}.

    Clock duality: spans opened with {!Span.with_} measure wall time and
    nest via an explicit span stack; engines that charge a simulated
    clock ({!Gb_cluster.Cluster}, {!Gb_mapreduce.Mr}, the SciDB/Phi
    device model) instead {!Span.emit} spans with explicit simulated
    timestamps. Both land in the same trace on separate tracks. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * value) list

type track = Wall  (** real time, relative to the trace epoch *)
           | Sim  (** simulated-clock seconds *)

type span = {
  id : int;
  parent : int;  (** span id, or -1 for a root *)
  name : string;
  cat : string;
  track : track;
  tid : int;  (** 0 = main; cluster nodes use 1-based ranks *)
  t0 : float;
  dur : float;
  attrs : attrs;
}

type event =
  | Span_ev of span
  | Instant_ev of { name : string; track : track; tid : int; ts : float; attrs : attrs }

val string_of_value : value -> string

val enabled : unit -> bool
(** The in-memory collector flag: spans and instants accumulate in the
    process-global event buffer read back by {!events}. *)

val set_enabled : bool -> unit

val recording : unit -> bool
(** The flight-recorder flag (bit 1 of the same atomic word): when set,
    every produced event is also handed to the sink installed with
    {!set_sink} — the always-on bounded capture path ({!Recorder}) that
    works with the collector off. *)

val set_recording : bool -> unit

val active : unit -> bool
(** [enabled () || recording ()], read with one atomic load — the guard
    call sites use around span-building work so the fully-disabled mode
    keeps the one-load-and-branch overhead contract. *)

val set_sink : (event -> unit) -> unit
(** Install the recorder sink. Called once by {!Recorder.start}; the
    sink is only invoked while {!recording} is set and must be
    domain-safe. *)

val domain_tid : unit -> int
(** Trace track id of the calling domain: 0 on the main domain; the
    pool assigns lane numbers to its workers. Wall spans and instants
    default their [tid] to this. *)

val set_domain_tid : int -> unit
(** Register the calling domain's trace track id (domain-local; the
    Domain pool calls this once per worker). *)

val reset : unit -> unit
(** Clear collected events and re-anchor the wall-clock epoch. Does not
    change the enabled flag. *)

val now : unit -> float
(** Wall seconds since the trace epoch. *)

val events : unit -> event list
(** All collected events, oldest first. *)

val event_count : unit -> int

val mark : unit -> int
(** A cursor into the event stream; pass to {!events_since}. *)

val events_since : int -> event list
(** Events recorded after the given {!mark}, oldest first. *)

val open_depth : unit -> int
(** Number of currently open {!Span.with_} frames (0 when balanced). *)

module Span : sig
  val with_ :
    ?cat:string ->
    ?attrs:attrs ->
    ?attrs_after:(unit -> attrs) ->
    ?dur_of:('a -> float option) ->
    name:string ->
    (unit -> 'a) ->
    'a
  (** Run [f] inside a wall-clock span. Exception-safe: the span is
      closed (and flagged [error]) if [f] raises. [dur_of] may override
      the recorded duration from the result — the harness uses it to
      make a cell's root span equal the engine-reported total rather
      than raw wall elapsed (which would include untimed setup).
      [attrs_after] is evaluated when the span closes (on both the normal
      and the exception path) and its result is prepended to [attrs] —
      the vehicle for measurements only known at close, such as
      {!Profile}'s GC deltas. It is never evaluated while tracing is
      disabled. *)

  val emit :
    ?cat:string ->
    ?attrs:attrs ->
    ?track:track ->
    ?tid:int ->
    name:string ->
    t0:float ->
    t1:float ->
    unit ->
    unit
  (** Record a completed span with explicit timestamps — the vehicle for
      simulated-clock spans (default [track] is [Sim]). Wall-track emits
      attach to the currently open {!with_} span; Sim spans nest by time
      containment instead of parent links. *)

  val instant :
    ?attrs:attrs -> ?track:track -> ?tid:int -> ?ts:float -> name:string -> unit -> unit
end

module Log : sig
  val line : ?sink:(string -> unit) -> string -> unit
  (** One timestamped channel for progress lines: prefixes the message
      with [+seconds] since the trace epoch and hands it to [sink], and
      (when tracing is enabled) records it as an instant event so log
      lines interleave with spans in the exported trace. *)
end
