(* Labeled metric families: counters, gauges and histograms keyed by
   label sets, with explicit bucket boundaries and within-bucket linear
   interpolation for quantiles, plus a sliding-window aggregator (a ring
   of bucketed sub-windows advanced by whichever clock the caller
   supplies — sim seconds in the simulated server, wall seconds in the
   live one) so tail latency is queryable mid-run.

   The subsystem hangs off its own flag, independent of {!Obs}'s span
   flag: every mutation hook reduces to a load-and-branch when disabled,
   so the serving hot paths keep the PR-3 one-branch overhead contract
   even with telemetry compiled in. Registration (done once at module
   top level) is never gated — a family handle is just a name bound to a
   registry slot.

   Name discipline follows the Prometheus exposition rules so the
   {!Expo} renderer never has to escape metric or label *names*: metric
   names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names the same without
   the colon. Label *values* are arbitrary strings (escaped by the
   renderer). Labels are canonicalized (sorted by name, duplicates
   rejected) at the observation site, so ["a=1;b=2"] and ["b=2;a=1"]
   address the same cell. *)

type labels = (string * string) list

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* --- name discipline --- *)

let name_ok ~allow_colon s =
  let ok_first c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || c = '_'
    || (allow_colon && c = ':')
  in
  let ok_rest c = ok_first c || (c >= '0' && c <= '9') in
  String.length s > 0
  && ok_first s.[0]
  && (let all = ref true in
      String.iter (fun c -> if not (ok_rest c) then all := false) s;
      !all)

let check_metric_name what s =
  if not (name_ok ~allow_colon:true s) then
    invalid_arg (Printf.sprintf "Telemetry.%s: invalid metric name %S" what s)

let canon (labels : labels) : labels =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then
        invalid_arg
          (Printf.sprintf "Telemetry: duplicate label name %S in label set" a);
      check rest
    | _ -> ()
  in
  List.iter
    (fun (k, _) ->
      if not (name_ok ~allow_colon:false k) then
        invalid_arg (Printf.sprintf "Telemetry: invalid label name %S" k))
    sorted;
  check sorted;
  sorted

(* --- buckets --- *)

(* Latency ladder in seconds: roughly 1-2.5-5 per decade from 0.5 ms to
   250 s. Sim-clock service times and wall-clock engine runs both land
   comfortably inside it. *)
let default_buckets =
  [|
    0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
    2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0;
  |]

let check_buckets what (b : float array) =
  if Array.length b = 0 then
    invalid_arg (Printf.sprintf "Telemetry.%s: empty bucket array" what);
  Array.iteri
    (fun i x ->
      if not (Float.is_finite x) then
        invalid_arg (Printf.sprintf "Telemetry.%s: non-finite bucket" what);
      if i > 0 && x <= b.(i - 1) then
        invalid_arg
          (Printf.sprintf "Telemetry.%s: buckets must strictly increase" what))
    b

(* Index of the bucket an observation falls in: first upper bound >= v,
   or the overflow slot (length b) past the last finite bound. *)
let bucket_index (b : float array) v =
  let n = Array.length b in
  let rec go i = if i >= n then n else if v <= b.(i) then i else go (i + 1) in
  go 0

(* Interpolated quantile over per-bucket counts (length = finite buckets
   + 1 overflow slot). Prometheus histogram_quantile semantics: find the
   bucket where the cumulative count crosses [q * total], interpolate
   linearly between the bucket's bounds by position within it. The
   overflow bucket has no upper bound, so a quantile landing there
   reports the largest finite bound. *)
let quantile_of_counts ~(buckets : float array) ~(counts : int array) q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = Float.max (q *. float_of_int total) 1e-12 in
    let nb = Array.length buckets in
    let rec go i cum =
      if i > nb then Some buckets.(nb - 1)
      else
        let n = counts.(i) in
        let cum' = cum +. float_of_int n in
        if n > 0 && cum' >= target then
          if i = nb then Some buckets.(nb - 1)
          else begin
            let lower = if i = 0 then 0. else buckets.(i - 1) in
            let upper = buckets.(i) in
            let frac = (target -. cum) /. float_of_int n in
            Some (lower +. (frac *. (upper -. lower)))
          end
        else go (i + 1) cum'
    in
    go 0 0.
  end

(* Width of the bucket containing [v] — the resolution of any quantile
   reported from that bucket, and therefore the agreement tolerance
   between interpolated and exact percentiles. *)
let bucket_width_for (b : float array) v =
  let i = bucket_index b v in
  if i >= Array.length b then infinity
  else if i = 0 then b.(0)
  else b.(i) -. b.(i - 1)

(* --- cells and families --- *)

type hist_cell = {
  hc_counts : int array;  (** finite buckets + overflow slot *)
  mutable hc_sum : float;
  mutable hc_count : int;
}

type cell = Cnt of float Atomic.t | Gge of float Atomic.t | Hst of hist_cell

type kind = Counter | Gauge | Histogram

let kind_label = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_buckets : float array;
  f_lock : Mutex.t;  (** guards [f_cells] and every histogram cell *)
  f_cells : (labels, cell) Hashtbl.t;
}

type counter_family = family
type gauge_family = family
type hist_family = family

let registry_m = Mutex.create ()
let registry : (string, family) Hashtbl.t = Hashtbl.create 16

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Find-or-register. Re-registration under the same name must agree on
   kind and (for histograms) bucket grid — a silent winner would skew
   every later observation, the same failure mode the plain {!Metric}
   registry had with units. [help] is not identity: the first non-empty
   help wins. *)
let family ~kind ?(help = "") ?buckets name =
  check_metric_name (kind_label kind) name;
  (match buckets with
  | Some b -> check_buckets (kind_label kind) b
  | None -> ());
  locked registry_m (fun () ->
      match Hashtbl.find_opt registry name with
      | Some f ->
        if f.f_kind <> kind then
          invalid_arg
            (Printf.sprintf
               "Telemetry: %s already registered as a %s (wanted %s)" name
               (kind_label f.f_kind) (kind_label kind));
        (match buckets with
        | Some b when b <> f.f_buckets ->
          invalid_arg
            (Printf.sprintf
               "Telemetry: histogram %s already registered with a different \
                bucket grid"
               name)
        | _ -> ());
        f
      | None ->
        let f =
          {
            f_name = name;
            f_help = help;
            f_kind = kind;
            f_buckets =
              (match buckets with
              | Some b -> Array.copy b
              | None -> default_buckets);
            f_lock = Mutex.create ();
            f_cells = Hashtbl.create 8;
          }
        in
        Hashtbl.add registry name f;
        f)

let counter_family ?help name = family ~kind:Counter ?help name
let gauge_family ?help name = family ~kind:Gauge ?help name
let hist_family ?help ?buckets name = family ~kind:Histogram ?help ?buckets name

let family_name (f : family) = f.f_name

let cell f labels =
  let labels = canon labels in
  locked f.f_lock (fun () ->
      match Hashtbl.find_opt f.f_cells labels with
      | Some c -> c
      | None ->
        let c =
          match f.f_kind with
          | Counter -> Cnt (Atomic.make 0.)
          | Gauge -> Gge (Atomic.make 0.)
          | Histogram ->
            Hst
              {
                hc_counts = Array.make (Array.length f.f_buckets + 1) 0;
                hc_sum = 0.;
                hc_count = 0;
              }
        in
        Hashtbl.add f.f_cells labels c;
        c)

let rec atomic_addf cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_addf cell x

let incr f ?(by = 1.) labels =
  if Atomic.get enabled_flag then begin
    if by < 0. then invalid_arg "Telemetry.incr: counters only go up";
    match cell f labels with
    | Cnt a -> atomic_addf a by
    | Gge _ | Hst _ -> assert false
  end

let set f labels v =
  if Atomic.get enabled_flag then
    match cell f labels with
    | Gge a -> Atomic.set a v
    | Cnt _ | Hst _ -> assert false

let observe f labels v =
  if Atomic.get enabled_flag then
    match cell f labels with
    | Hst h ->
      locked f.f_lock (fun () ->
          let i = bucket_index f.f_buckets v in
          h.hc_counts.(i) <- h.hc_counts.(i) + 1;
          h.hc_sum <- h.hc_sum +. v;
          h.hc_count <- h.hc_count + 1)
    | Cnt _ | Gge _ -> assert false

let value f labels =
  match cell f labels with
  | Cnt a | Gge a -> Atomic.get a
  | Hst _ -> invalid_arg "Telemetry.value: histogram cell"

let gauge_value = value

let quantile f labels q =
  match cell f labels with
  | Hst h ->
    locked f.f_lock (fun () ->
        quantile_of_counts ~buckets:f.f_buckets ~counts:h.hc_counts q)
  | Cnt _ | Gge _ -> invalid_arg "Telemetry.quantile: not a histogram"

(* Aggregate quantile across every cell of the family — all cells share
   one grid, so merging is a per-bucket sum. *)
let quantile_agg f q =
  if f.f_kind <> Histogram then
    invalid_arg "Telemetry.quantile_agg: not a histogram";
  locked f.f_lock (fun () ->
      let merged = Array.make (Array.length f.f_buckets + 1) 0 in
      Hashtbl.iter
        (fun _ c ->
          match c with
          | Hst h ->
            Array.iteri (fun i n -> merged.(i) <- merged.(i) + n) h.hc_counts
          | Cnt _ | Gge _ -> ())
        f.f_cells;
      quantile_of_counts ~buckets:f.f_buckets ~counts:merged q)

let bucket_width f v =
  if f.f_kind <> Histogram then
    invalid_arg "Telemetry.bucket_width: not a histogram";
  bucket_width_for f.f_buckets v

(* --- snapshots (the Expo renderer's input) --- *)

type value_snap =
  | Sample of float
  | Hist_sample of { le : (float * int) list; hsum : float; hcount : int }

type family_snap = {
  fam : string;
  help : string;
  kind : kind;
  rows : (labels * value_snap) list;
}

let snap_cell f = function
  | Cnt a | Gge a -> Sample (Atomic.get a)
  | Hst h ->
    (* Cumulative counts per upper bound, +Inf last — exactly the
       exposition's _bucket series. *)
    let cum = ref 0 in
    let le =
      Array.to_list
        (Array.mapi
           (fun i upper ->
             cum := !cum + h.hc_counts.(i);
             (upper, !cum))
           f.f_buckets)
      @ [ (infinity, h.hc_count) ]
    in
    Hist_sample { le; hsum = h.hc_sum; hcount = h.hc_count }

let snapshot () =
  let fams =
    locked registry_m (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) registry [])
  in
  List.map
    (fun f ->
      let rows =
        locked f.f_lock (fun () ->
            Hashtbl.fold
              (fun labels c acc -> (labels, snap_cell f c) :: acc)
              f.f_cells [])
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      { fam = f.f_name; help = f.f_help; kind = f.f_kind; rows })
    fams
  |> List.sort (fun a b -> compare a.fam b.fam)

let reset () =
  let fams =
    locked registry_m (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) registry [])
  in
  List.iter
    (fun f ->
      locked f.f_lock (fun () ->
          Hashtbl.iter
            (fun _ c ->
              match c with
              | Cnt a | Gge a -> Atomic.set a 0.
              | Hst h ->
                Array.fill h.hc_counts 0 (Array.length h.hc_counts) 0;
                h.hc_sum <- 0.;
                h.hc_count <- 0)
            f.f_cells;
          Hashtbl.reset f.f_cells))
    fams

let clear () =
  locked registry_m (fun () -> Hashtbl.reset registry)

(* --- sliding windows --- *)

module Window = struct
  (* A ring of [n] bucketed sub-windows of [width] seconds each. The
     ring is advanced lazily by the caller's clock: observing or
     querying at time [t] zeroes every sub-window the clock skipped, so
     idle periods cost nothing and the structure works identically on
     the simulated and the wall clock. Observations older than the ring
     (more than [n] sub-windows behind the newest) are dropped — they
     could only land in a slot that has been recycled. *)
  type t = {
    width : float;
    n : int;
    w_buckets : float array;
    rings : int array array;  (** [n] x (finite buckets + overflow) *)
    w_sums : float array;
    w_counts : int array;
    mutable cur : int;  (** absolute index of the newest sub-window *)
    mutable advanced : int;  (** sub-window slots recycled so far *)
    mutable dropped : int;  (** observations older than the ring *)
    w_lock : Mutex.t;
  }

  let create ?(width_s = 1.0) ?(windows = 60) ?(buckets = default_buckets) ()
      =
    if not (Float.is_finite width_s) || width_s <= 0. then
      invalid_arg "Telemetry.Window.create: width_s";
    if windows < 1 then invalid_arg "Telemetry.Window.create: windows";
    check_buckets "Window.create" buckets;
    {
      width = width_s;
      n = windows;
      w_buckets = Array.copy buckets;
      rings = Array.init windows (fun _ -> Array.make (Array.length buckets + 1) 0);
      w_sums = Array.make windows 0.;
      w_counts = Array.make windows 0;
      cur = 0;
      advanced = 0;
      dropped = 0;
      w_lock = Mutex.create ();
    }

  let horizon_s t = t.width *. float_of_int t.n

  let abs_index t now = int_of_float (Float.floor (Float.max 0. now /. t.width))

  let slot t abs = ((abs mod t.n) + t.n) mod t.n

  let advance_locked t abs =
    if abs > t.cur then begin
      let steps = min t.n (abs - t.cur) in
      for k = 1 to steps do
        let s = slot t (t.cur + k + (abs - t.cur - steps)) in
        (* zero the slots being recycled; when the jump exceeds the ring
           every slot is cleared exactly once *)
        Array.fill t.rings.(s) 0 (Array.length t.rings.(s)) 0;
        t.w_sums.(s) <- 0.;
        t.w_counts.(s) <- 0
      done;
      t.advanced <- t.advanced + steps;
      t.cur <- abs
    end

  let observe t ~now v =
    locked t.w_lock (fun () ->
        let abs = abs_index t now in
        advance_locked t abs;
        if abs > t.cur - t.n then begin
          let s = slot t abs in
          let i = bucket_index t.w_buckets v in
          t.rings.(s).(i) <- t.rings.(s).(i) + 1;
          t.w_sums.(s) <- t.w_sums.(s) +. v;
          t.w_counts.(s) <- t.w_counts.(s) + 1
        end
        else t.dropped <- t.dropped + 1)

  (* Merged counts over the sub-windows intersecting
     [now - horizon, now]. *)
  let agg_locked t ~now ~horizon_s =
    let abs = abs_index t now in
    advance_locked t abs;
    let k =
      max 1 (min t.n (int_of_float (Float.ceil (horizon_s /. t.width))))
    in
    let merged = Array.make (Array.length t.w_buckets + 1) 0 in
    let count = ref 0 and sum = ref 0. in
    for j = 0 to k - 1 do
      let a = t.cur - j in
      if a >= 0 then begin
        let s = slot t a in
        Array.iteri (fun i n -> merged.(i) <- merged.(i) + n) t.rings.(s);
        count := !count + t.w_counts.(s);
        sum := !sum +. t.w_sums.(s)
      end
    done;
    (merged, !count, !sum)

  let count t ~now ~horizon_s =
    locked t.w_lock (fun () ->
        let _, c, _ = agg_locked t ~now ~horizon_s in
        c)

  let mean t ~now ~horizon_s =
    locked t.w_lock (fun () ->
        let _, c, s = agg_locked t ~now ~horizon_s in
        if c = 0 then None else Some (s /. float_of_int c))

  let quantile t ~now ~horizon_s q =
    locked t.w_lock (fun () ->
        let merged, _, _ = agg_locked t ~now ~horizon_s in
        quantile_of_counts ~buckets:t.w_buckets ~counts:merged q)

  (* Visibility into the ring's churn: how many sub-window slots have
     been recycled and how many observations arrived too old to land.
     Non-zero drops mean the live quantiles silently miss data. *)
  let advanced t = locked t.w_lock (fun () -> t.advanced)
  let dropped t = locked t.w_lock (fun () -> t.dropped)
end
