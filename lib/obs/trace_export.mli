(** Trace sinks: Chrome [trace_event] JSON export, a minimal JSON parser
    to validate the export, and text flame/summary renderers. *)

val chrome_json : Obs.event list -> string
(** Serialize events in the Chrome trace_event JSON-object format,
    loadable in chrome://tracing and Perfetto. Wall-track events land on
    pid 1 ("wall clock"), simulated-clock events on pid 2 ("simulated
    clock"); cluster node ids become thread tracks. Timestamps are
    microseconds; spans use "X" complete events, instants use "i". *)

type json = Json.t =
  | Null
  | JBool of bool
  | Num of float
  | JStr of string
  | Arr of json list
  | Obj of (string * json) list
(** Re-export of {!Json.t} so trace consumers keep one import. *)

val parse : string -> (json, string) result
(** {!Json.parse}: minimal JSON parser (ASCII escapes only) — enough to
    round-trip what {!chrome_json} emits. *)

val validate_chrome : string -> (int, string) result
(** Parse a serialized trace and check the trace_event essentials: a
    [traceEvents] array whose members carry [ph]/[name]/[pid]/[tid], a
    numeric [ts] on non-metadata events, and a non-negative [dur] on "X"
    events. [Ok n] gives the number of non-metadata events. *)

val events_of_chrome : string -> (Obs.event list, string) result
(** Inverse of {!chrome_json}: reconstruct events from a serialized
    trace, in file order. Span ids and parent links come back from the
    exported ["span_id"]/["parent"] args (spans lacking a ["span_id"]
    get fresh synthetic ids); integral numeric args parse as [Int], the
    rest as [Float]. Strict: truncated or malformed JSON, schema
    violations, unknown [ph]/[pid], and duplicate span ids are rejected
    with a positioned error — never a crash or a mis-linked tree. *)

type agg = { name : string; calls : int; total : float; self : float }

val span_summary : ?exclude_cat:string -> Obs.event list -> agg list
(** Per-name aggregation, sorted by total duration descending. Self time
    excludes child spans, which are reconstructed from parent links and
    time containment per (track, node) group. *)

val top_spans : ?k:int -> ?exclude_cat:string -> Obs.event list -> (string * float) list
(** The [k] span names with the largest total duration — the harness
    puts these in its CSV breakdown column. *)

val flame : ?max_lines:int -> Obs.event list -> string
(** Indented span tree per clock track and node, durations in seconds. *)

val summary : ?exclude_cat:string -> Obs.event list -> string
(** Table form of {!span_summary}. *)
