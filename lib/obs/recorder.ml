(* Flight recorder: bounded ring of recent events + tail-based sampling
   + anomaly-triggered dumps. See the mli for the capture model.

   Domain-safety: every piece of state sits behind one mutex. The sink
   runs on whichever domain produced the event (pool workers included),
   and observe/trigger hooks run on the serving thread; the ring
   operations are O(1) so the critical sections stay short. Hooks
   early-return on the recording bit (one atomic load) so the stopped
   recorder costs the same as disabled tracing. *)

type config = {
  capacity : int;
  sample_every : int;
  tail_latency_s : float;
  shed_spike : int;
  shed_window_s : float;
  cooldown_s : float;
  max_dumps : int;
}

let default =
  {
    capacity = 8192;
    sample_every = 10;
    tail_latency_s = 1.0;
    shed_spike = 10;
    shed_window_s = 1.0;
    cooldown_s = 5.0;
    max_dumps = 8;
  }

type reason = Slo_fire | Breaker_open | Shed_spike | Tail_latency | Manual

let reason_label = function
  | Slo_fire -> "slo_fire"
  | Breaker_open -> "breaker_open"
  | Shed_spike -> "shed_spike"
  | Tail_latency -> "tail_latency"
  | Manual -> "manual"

type dump = {
  d_seq : int;
  d_reason : reason;
  d_at : float;
  d_events : Obs.event list;
  d_kept : int list;
  d_sampled : int list;
  d_ring_dropped : int;
}

type stats = {
  s_seen : int;
  s_ring_dropped : int;
  s_responses : int;
  s_tail_kept : int;
  s_fail_kept : int;
  s_fast_sampled : int;
  s_fast_discarded : int;
  s_dumps : int;
  s_suppressed : int;
}

(* --- state (all behind [m]) --- *)

let m = Mutex.create ()
let cfg = ref default

(* Ring of recent events: [ring.(i)] valid for the last [filled] slots
   ending at [head - 1] (mod capacity). *)
let ring : Obs.event option array ref = ref [||]
let head = ref 0
let filled = ref 0
let seen = ref 0
let ring_dropped = ref 0

(* Sticky per-trace keep decision: [true] = keep (slow, failed, or
   sampled), [false] = discarded fast trace. Absent = undecided. *)
let decided : (int, bool) Hashtbl.t = Hashtbl.create 512
let sampled : (int, unit) Hashtbl.t = Hashtbl.create 64
let fast_counter = ref 0
let responses = ref 0
let tail_kept = ref 0
let fail_kept = ref 0
let fast_sampled = ref 0
let fast_discarded = ref 0

(* Shed timestamps inside the spike window, oldest first. *)
let sheds : float Queue.t = Queue.create ()

let dumps_rev : dump list ref = ref []
let dump_count = ref 0
let suppressed = ref 0
let last_dump_at = ref neg_infinity

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let reset_locked () =
  ring := Array.make (max 1 !cfg.capacity) None;
  head := 0;
  filled := 0;
  seen := 0;
  ring_dropped := 0;
  Hashtbl.reset decided;
  Hashtbl.reset sampled;
  fast_counter := 0;
  responses := 0;
  tail_kept := 0;
  fail_kept := 0;
  fast_sampled := 0;
  fast_discarded := 0;
  Queue.clear sheds;
  dumps_rev := [];
  dump_count := 0;
  suppressed := 0;
  last_dump_at := neg_infinity

let push ev =
  locked (fun () ->
      let r = !ring in
      let n = Array.length r in
      if n > 0 then begin
        r.(!head) <- Some ev;
        head := (!head + 1) mod n;
        if !filled < n then incr filled else incr ring_dropped;
        incr seen
      end)

let start ?(config = default) () =
  locked (fun () ->
      cfg := config;
      reset_locked ());
  Obs.set_sink push;
  Obs.set_recording true

let stop () = Obs.set_recording false
let recording () = Obs.recording ()
let clear () = locked reset_locked

(* --- tail-based sampling --- *)

(* Trace id of an event, when it carries one. Both spans and instants
   use the ("trace", Int id) attr convention from the serve layer. *)
let trace_of = function
  | Obs.Span_ev s -> (
    match List.assoc_opt "trace" s.Obs.attrs with
    | Some (Obs.Int t) -> Some t
    | _ -> None)
  | Obs.Instant_ev i -> (
    match List.assoc_opt "trace" i.attrs with
    | Some (Obs.Int t) -> Some t
    | _ -> None)

let snapshot_locked () =
  let r = !ring in
  let n = Array.length r in
  let out = ref [] in
  (* oldest slot is head - filled (mod n); walk forward *)
  for k = !filled - 1 downto 0 do
    let i = ((!head - 1 - k) mod n + n) mod n in
    match r.(i) with Some ev -> out := ev :: !out | None -> ()
  done;
  List.rev !out

let take_dump_locked reason now =
  let keep_trace t =
    match Hashtbl.find_opt decided t with Some b -> b | None -> false
  in
  let events =
    snapshot_locked ()
    |> List.filter (fun ev ->
           match trace_of ev with None -> true | Some t -> keep_trace t)
  in
  let kept =
    Hashtbl.fold (fun t b acc -> if b then t :: acc else acc) decided []
    |> List.sort compare
  in
  let samp =
    Hashtbl.fold (fun t () acc -> t :: acc) sampled [] |> List.sort compare
  in
  let seq = !dump_count in
  let marker =
    Obs.Instant_ev
      {
        name = "recorder.dump";
        track = Obs.Sim;
        tid = 0;
        ts = now;
        attrs =
          [
            ("reason", Obs.Str (reason_label reason));
            ("seq", Obs.Int seq);
            ("kept_traces", Obs.Int (List.length kept));
            ("ring_dropped", Obs.Int !ring_dropped);
          ];
      }
  in
  let d =
    {
      d_seq = seq;
      d_reason = reason;
      d_at = now;
      d_events = events @ [ marker ];
      d_kept = kept;
      d_sampled = samp;
      d_ring_dropped = !ring_dropped;
    }
  in
  dumps_rev := d :: !dumps_rev;
  incr dump_count;
  last_dump_at := now

let trigger ?(reason = Manual) ~now () =
  if Obs.recording () then
    locked (fun () ->
        let auto = reason <> Manual in
        if
          auto
          && (!dump_count >= !cfg.max_dumps
             || now -. !last_dump_at < !cfg.cooldown_s)
        then incr suppressed
        else take_dump_locked reason now)

let observe_response ~trace ~latency_s ~ok ~now =
  if Obs.recording () then begin
    let fire = ref false in
    locked (fun () ->
        incr responses;
        let interesting = (not ok) || latency_s >= !cfg.tail_latency_s in
        (match (Hashtbl.find_opt decided trace, interesting) with
        | Some true, _ -> ()
        | (Some false | None), true ->
          (* Upgrade (or first-sight keep). An earlier fast-sampling
             decision stands in the counters but the trace is kept. *)
          Hashtbl.replace decided trace true;
          if ok then incr tail_kept else incr fail_kept
        | Some false, false -> ()
        | None, false ->
          incr fast_counter;
          let keep =
            !cfg.sample_every > 0 && (!fast_counter - 1) mod !cfg.sample_every = 0
          in
          Hashtbl.replace decided trace keep;
          if keep then begin
            Hashtbl.replace sampled trace ();
            incr fast_sampled
          end
          else incr fast_discarded);
        if ok && latency_s >= !cfg.tail_latency_s then fire := true);
    if !fire then trigger ~reason:Tail_latency ~now ()
  end

let observe_shed ~now =
  if Obs.recording () then begin
    let fire = ref false in
    locked (fun () ->
        Queue.push now sheds;
        while
          (not (Queue.is_empty sheds))
          && now -. Queue.peek sheds > !cfg.shed_window_s
        do
          ignore (Queue.pop sheds)
        done;
        if Queue.length sheds >= !cfg.shed_spike then begin
          Queue.clear sheds;
          fire := true
        end);
    if !fire then trigger ~reason:Shed_spike ~now ()
  end

let dumps () = locked (fun () -> List.rev !dumps_rev)

let stats () =
  locked (fun () ->
      {
        s_seen = !seen;
        s_ring_dropped = !ring_dropped;
        s_responses = !responses;
        s_tail_kept = !tail_kept;
        s_fail_kept = !fail_kept;
        s_fast_sampled = !fast_sampled;
        s_fast_discarded = !fast_discarded;
        s_dumps = !dump_count;
        s_suppressed = !suppressed;
      })

let chrome_of_dump d = Trace_export.chrome_json d.d_events
