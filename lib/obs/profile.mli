(** GC/allocation profiling: [Gc.quick_stat] deltas around spans.

    Allocation pressure and the collections it forces are invisible in a
    pure-time trace; this module reports them. {!with_} is a drop-in
    replacement for {!Obs.Span.with_} that attaches the span's GC delta
    ([gc_minor_words], [gc_major_words], [gc_promoted_words],
    [gc_minor_collections], [gc_major_collections], and
    [gc_top_heap_growth_words] when the heap peak moved) as close-time
    attributes, and feeds the process-global [gc.*] counters in
    {!Metric} — from the {e outermost} profiled span only, so a cell's
    counter delta is not double-counted by its nested phase and kernel
    spans. {!start}/{!delta_attrs} serve operators with a streaming loop
    of their own (the volcano [?trace] hooks), which cannot wrap.

    Doubly gated: hooks do nothing unless both {!set_enabled}[ true] and
    {!Obs.set_enabled}[ true] — with either off no [Gc.quick_stat] is
    taken, no attribute is built and no counter moves, extending the
    bit-identical-conformance contract to these hooks. *)

val enabled : unit -> bool
(** [true] iff GC profiling {e and} tracing are both on. *)

val set_enabled : bool -> unit
(** Toggle GC profiling (independent of the tracing flag; off by
    default). *)

type snapshot
(** A [Gc.quick_stat] capture. *)

val start : unit -> snapshot option
(** [Some] capture when {!enabled}; [None] (for free) otherwise. Pair
    with {!delta_attrs} around a streaming loop. *)

val delta_attrs : snapshot option -> Obs.attrs
(** Attributes for the GC delta since [start] ([[]] for [None]). Does
    not touch the [gc.*] counters — fused operator loops may abandon
    their stream mid-flight, so only {!with_} (which is exception-safe)
    feeds counters. *)

val with_ :
  ?cat:string ->
  ?attrs:Obs.attrs ->
  ?dur_of:('a -> float option) ->
  name:string ->
  (unit -> 'a) ->
  'a
(** {!Obs.Span.with_} plus a GC delta: attributes on every profiled
    span, [gc.*] counters from the outermost one. Falls back to a plain
    span when profiling is disabled (and to running [f] bare when
    tracing is). *)
