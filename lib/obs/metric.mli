(** Monotonic counters and log-bucketed histograms in a process-global
    registry. All additions are gated on {!Obs.enabled}; the disabled
    mode costs one branch per hook. Snapshots sort by name so CSV
    columns have a stable order independent of registration order. *)

type counter

val counter : ?unit_:string -> string -> counter
(** Find or register a counter. Names are conventionally
    ["subsystem.metric"], e.g. ["storage.tuples_decoded"]. Repeat calls
    with the same name return the same counter, so call sites may bind
    one at module top level. Re-registering with an explicit [?unit_]
    that differs from the registered unit raises [Invalid_argument];
    omitting [?unit_] matches whatever is registered. *)

val add : counter -> int -> unit
val addf : counter -> float -> unit
val value : counter -> float
val counter_unit : counter -> string

type histogram

val histogram : ?unit_:string -> string -> histogram
(** Find or register a histogram with power-of-two buckets. Unit-clash
    behaviour matches {!counter}: a differing explicit [?unit_] raises. *)

val observe : histogram -> float -> unit

type hist_stats = {
  count : int;
  sum : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
      (** linearly interpolated within the crossing bucket, clamped to
          [[min_v, max_v]] — resolution is the bucket width, not a
          factor-of-2 upper bound *)
  p99 : float;
}

val stats : histogram -> hist_stats

val snapshot : unit -> (string * float) list
(** All counter values, sorted by name. *)

val hist_snapshot : unit -> (string * hist_stats) list

val delta : (string * float) list -> (string * float) list
(** Counters that moved since a previous {!snapshot}, sorted by name. *)

val reset : unit -> unit
(** Zero every registered counter and histogram (registrations stay). *)
