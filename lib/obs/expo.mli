(** Prometheus text exposition: renderer + strict mini-parser.

    {!render} writes [# HELP] / [# TYPE] comment lines followed by
    sample lines; histogram rows expand to the cumulative [_bucket]
    ladder (label [le], [+Inf] last) plus [_sum] and [_count]. Label
    values escape backslash, double-quote and newline; HELP text escapes
    backslash and newline.

    {!parse} accepts exactly what {!render} produces (no timestamps, no
    untyped samples) and checks histogram invariants: strictly
    increasing bounds, cumulative counts, [+Inf] bucket equal to
    [_count]. Because {!Telemetry.snapshot} is canonically ordered and
    the parser preserves file order, [render (parse (render s)) =
    render s] — the fixed point the round-trip tests assert. *)

val render : Telemetry.family_snap list -> string

val parse : string -> (Telemetry.family_snap list, string) result

(** [validate text] parses and re-renders, requiring byte equality.
    Returns the family count on success. *)
val validate : string -> (int, string) result

(**/**)

val fmt_float : float -> string
val escape_label_value : string -> string
