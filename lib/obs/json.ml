(* Minimal JSON: a value type, a recursive-descent parser, and a
   serializer. Shared by the Chrome trace exporter (round-trip validation
   of its own output) and the bench-baseline pipeline (BENCH_*.json files
   that must be both emitted and re-read). ASCII-oriented: good enough for
   everything this repo writes, with no external dependency. *)

type t =
  | Null
  | JBool of bool
  | Num of float
  | JStr of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- escaping / serialization --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integers print as integers; other floats keep 12 significant digits —
   enough to round-trip benchmark timings while staying diff-readable.
   Non-finite numbers have no JSON encoding and degrade to null. *)
let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | JBool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number_to_string f)
  | JStr s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --- *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("bad literal " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "bad escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* ASCII only — enough for our own output *)
          Buffer.add_char buf (Char.chr (code land 0x7f));
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> Num f
    | None -> fail ("bad number " ^ str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | '"' -> JStr (parse_string ())
    | 't' -> parse_lit "true" (JBool true)
    | 'f' -> parse_lit "false" (JBool false)
    | 'n' -> parse_lit "null" Null
    | _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* --- accessors for consumers walking parsed trees --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function JStr s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
