(* Prometheus text exposition (version 0.0.4): render a Telemetry
   snapshot as `# HELP` / `# TYPE` + sample lines, and parse it back
   with a strict line-based mini-parser used for round-trip validation
   in tests and CI.

   The fixed-point property the tests rely on — render (parse (render
   s)) = render s — holds because (a) Telemetry.snapshot is already in
   canonical order and the parser preserves file order, (b) label-value
   escaping is a bijection on the escaped alphabet, and (c) the float
   formatter is idempotent under parse-then-format: integers render
   without a fractional part and round-trip exactly, non-integers render
   with %.9g whose reparse yields the same double for every value the
   formatter can emit. *)

open Telemetry

(* [open Telemetry] shadows Stdlib.incr with the counter hook *)
let incr = Stdlib.incr

(* --- rendering --- *)

(* Integral values print without an exponent or fraction so counts look
   like counts; %.17g would round-trip bit-exactly but renders 0.1 as
   0.10000000000000001, and the telemetry values here (seconds, counts,
   bytes) never need more than 9 significant digits. *)
let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let fmt_le x = if x = infinity then "+Inf" else fmt_float x

let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP text: only backslash and newline are escaped (the exposition
   format's rule — quotes are legal in HELP). *)
let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_str (labels : labels) =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let type_str = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let render (snaps : family_snap list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      if s.help <> "" then
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" s.fam (escape_help s.help));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" s.fam (type_str s.kind));
      List.iter
        (fun (labels, v) ->
          match v with
          | Sample x ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" s.fam (labels_str labels)
                 (fmt_float x))
          | Hist_sample { le; hsum; hcount } ->
            List.iter
              (fun (upper, cum) ->
                let ls = labels @ [ ("le", fmt_le upper) ] in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" s.fam (labels_str ls) cum))
              le;
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" s.fam (labels_str labels)
                 (fmt_float hsum));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" s.fam (labels_str labels)
                 hcount))
        s.rows)
    snaps;
  Buffer.contents b

(* --- parsing --- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let unescape_label_value s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' then begin
       if !i + 1 >= n then fail "dangling backslash in label value";
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c -> fail "bad escape \\%c in label value" c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let unescape_help s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | 'n' -> Buffer.add_char b '\n'
       | c ->
         Buffer.add_char b '\\';
         Buffer.add_char b c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let parse_float_strict what s =
  match s with
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | _ -> (
    match float_of_string_opt s with
    | Some x -> x
    | None -> fail "bad %s value %S" what s)

(* One sample line: name{label="v",...} value — no timestamp support
   (we never emit them; the strict parser rejects what render can't
   produce). *)
let parse_sample line =
  let name_end =
    let rec go i =
      if i >= String.length line then i
      else
        match line.[i] with '{' | ' ' -> i | _ -> go (i + 1)
    in
    go 0
  in
  if name_end = 0 then fail "empty metric name in %S" line;
  let name = String.sub line 0 name_end in
  let labels, rest_start =
    if name_end < String.length line && line.[name_end] = '{' then begin
      (* scan label pairs respecting escapes *)
      let labels = ref [] in
      let i = ref (name_end + 1) in
      let n = String.length line in
      let finished = ref false in
      while not !finished do
        if !i >= n then fail "unterminated label set in %S" line;
        if line.[!i] = '}' then begin
          incr i;
          finished := true
        end
        else begin
          (* label name *)
          let j = ref !i in
          while !j < n && line.[!j] <> '=' do
            incr j
          done;
          if !j >= n then fail "missing '=' in label in %S" line;
          let k = String.sub line !i (!j - !i) in
          if !j + 1 >= n || line.[!j + 1] <> '"' then
            fail "missing opening quote in %S" line;
          let v_start = !j + 2 in
          let v_end = ref v_start in
          let closed = ref false in
          while not !closed do
            if !v_end >= n then fail "unterminated label value in %S" line;
            if line.[!v_end] = '\\' then v_end := !v_end + 2
            else if line.[!v_end] = '"' then closed := true
            else incr v_end
          done;
          let v = unescape_label_value (String.sub line v_start (!v_end - v_start)) in
          labels := (k, v) :: !labels;
          i := !v_end + 1;
          if !i < n && line.[!i] = ',' then incr i
          else if !i < n && line.[!i] = '}' then ()
          else fail "expected ',' or '}' after label in %S" line
        end
      done;
      (List.rev !labels, !i)
    end
    else ([], name_end)
  in
  if rest_start >= String.length line || line.[rest_start] <> ' ' then
    fail "expected ' ' before value in %S" line;
  let value_s =
    String.sub line (rest_start + 1) (String.length line - rest_start - 1)
  in
  if String.contains value_s ' ' then
    fail "timestamps not supported: %S" line;
  (name, labels, parse_float_strict "sample" value_s)

type pre_family = {
  mutable p_help : string;
  p_kind : kind;
  (* raw sample lines in file order: (suffix name, labels, value) *)
  mutable p_samples : (string * labels * float) list;
}

let strip_suffix name suffix =
  let n = String.length name and m = String.length suffix in
  if n > m && String.sub name (n - m) m = suffix then
    Some (String.sub name 0 (n - m))
  else None

(* Reassemble histogram rows: group a family's samples by base label set
   (minus [le]), expect the full cumulative ladder plus _sum and _count,
   in file order. *)
let assemble_hist fam (samples : (string * labels * float) list) =
  (* rows keyed by label set without le, preserving first-seen order *)
  let order : labels list ref = ref [] in
  let tbl : (labels, (float * int) list ref * float option ref * int option ref)
      Hashtbl.t =
    Hashtbl.create 8
  in
  let row labels =
    match Hashtbl.find_opt tbl labels with
    | Some r -> r
    | None ->
      let r = (ref [], ref None, ref None) in
      Hashtbl.add tbl labels r;
      order := labels :: !order;
      r
  in
  List.iter
    (fun (name, labels, v) ->
      match strip_suffix name "_bucket" with
      | Some base when base = fam ->
        let le, rest =
          match List.partition (fun (k, _) -> k = "le") labels with
          | [ (_, le) ], rest -> (parse_float_strict "le" le, rest)
          | _ -> fail "histogram bucket without exactly one le label"
        in
        let buckets, _, _ = row rest in
        let cum = int_of_float v in
        if float_of_int cum <> v || cum < 0 then
          fail "non-integer bucket count in %s" fam;
        buckets := (le, cum) :: !buckets
      | _ -> (
        match strip_suffix name "_sum" with
        | Some base when base = fam ->
          let _, sum, _ = row labels in
          sum := Some v
        | _ -> (
          match strip_suffix name "_count" with
          | Some base when base = fam ->
            let _, _, count = row labels in
            let c = int_of_float v in
            if float_of_int c <> v || c < 0 then
              fail "non-integer count in %s" fam;
            count := Some c
          | _ -> fail "unexpected sample %S in histogram %s" name fam)))
    samples;
  List.rev_map
    (fun labels ->
      let buckets, sum, count = Hashtbl.find tbl labels in
      let le = List.rev !buckets in
      (match le with
      | [] -> fail "histogram row with no buckets in %s" fam
      | _ ->
        if fst (List.nth le (List.length le - 1)) <> infinity then
          fail "histogram %s missing +Inf bucket" fam;
        let rec mono = function
          | (u1, c1) :: ((u2, c2) :: _ as rest) ->
            if u2 <= u1 then fail "histogram %s buckets not increasing" fam;
            if c2 < c1 then fail "histogram %s counts not cumulative" fam;
            mono rest
          | _ -> ()
        in
        mono le);
      let hsum =
        match !sum with
        | Some s -> s
        | None -> fail "histogram %s row missing _sum" fam
      in
      let hcount =
        match !count with
        | Some c -> c
        | None -> fail "histogram %s row missing _count" fam
      in
      (match le with
      | _ ->
        let _, last = List.nth le (List.length le - 1) in
        if last <> hcount then
          fail "histogram %s +Inf bucket (%d) disagrees with _count (%d)" fam
            last hcount);
      (labels, Hist_sample { le; hsum; hcount }))
    !order

let parse (text : string) : (family_snap list, string) result =
  try
    let lines = String.split_on_char '\n' text in
    (* family order preserved *)
    let order : string list ref = ref [] in
    let fams : (string, pre_family) Hashtbl.t = Hashtbl.create 8 in
    let find_family_of_sample name =
      (* a sample belongs to the family whose name it equals, or whose
         name + _bucket/_sum/_count it equals *)
      let candidates =
        name
        :: List.filter_map
             (fun sfx -> strip_suffix name sfx)
             [ "_bucket"; "_sum"; "_count" ]
      in
      let rec go = function
        | [] -> fail "sample %S before its # TYPE line" name
        | c :: rest -> (
          match Hashtbl.find_opt fams c with
          | Some f -> (c, f)
          | None -> go rest)
      in
      go candidates
    in
    List.iter
      (fun line ->
        if line = "" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          let rest = String.sub line 7 (String.length line - 7) in
          match String.index_opt rest ' ' with
          | None -> fail "malformed HELP line %S" line
          | Some i ->
            let name = String.sub rest 0 i in
            let help =
              unescape_help (String.sub rest (i + 1) (String.length rest - i - 1))
            in
            (match Hashtbl.find_opt fams name with
            | Some f -> f.p_help <- help
            | None ->
              (* HELP precedes TYPE in our renderer: stash it *)
              Hashtbl.add fams name
                { p_help = help; p_kind = Gauge; p_samples = [] };
              (* kind fixed at TYPE line; mark as pending via absence
                 from order *)
              ())
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          let rest = String.sub line 7 (String.length line - 7) in
          match String.split_on_char ' ' rest with
          | [ name; kind_s ] ->
            let kind =
              match kind_s with
              | "counter" -> Counter
              | "gauge" -> Gauge
              | "histogram" -> Histogram
              | _ -> fail "unknown metric type %S" kind_s
            in
            (match Hashtbl.find_opt fams name with
            | Some f ->
              if List.mem name !order then
                fail "duplicate # TYPE for %s" name;
              (* re-add with the right kind, keep stashed help *)
              Hashtbl.replace fams name
                { p_help = f.p_help; p_kind = kind; p_samples = [] }
            | None ->
              Hashtbl.add fams name
                { p_help = ""; p_kind = kind; p_samples = [] });
            order := name :: !order
          | _ -> fail "malformed TYPE line %S" line
        end
        else if String.length line >= 1 && line.[0] = '#' then
          fail "unknown comment line %S" line
        else begin
          let name, labels, v = parse_sample line in
          let _fam_name, f = find_family_of_sample name in
          f.p_samples <- (name, labels, v) :: f.p_samples
        end)
      lines;
    let snaps =
      List.rev_map
        (fun fam ->
          let f = Hashtbl.find fams fam in
          let samples = List.rev f.p_samples in
          let rows =
            match f.p_kind with
            | Histogram -> assemble_hist fam samples
            | Counter | Gauge ->
              List.map
                (fun (name, labels, v) ->
                  if name <> fam then
                    fail "sample %S does not match family %s" name fam;
                  (labels, Sample v))
                samples
          in
          { fam; help = f.p_help; kind = f.p_kind; rows })
        !order
    in
    Ok snaps
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg

(* Round-trip validation: parse must succeed and re-rendering the parse
   must reproduce the input byte for byte. *)
let validate text =
  match parse text with
  | Error e -> Error e
  | Ok snaps ->
    let again = render snaps in
    if again = text then Ok (List.length snaps)
    else Error "render . parse is not the identity on this exposition"
