(* GC/allocation profiling: Gc.quick_stat deltas around spans.

   Timing tells you *where* a phase spends its wall clock; the two costs
   that stay invisible in a pure-time trace are allocation pressure
   (minor/major words, promotions) and the collections it forces. This
   module snapshots [Gc.quick_stat] around any span and reports the delta
   as span attributes, and — for the outermost profiled span only, so a
   cell's counters are not double-counted by its nested phases — as
   [gc.*] counters in the {!Metric} registry.

   Gated on its own flag AND on {!Obs.enabled}: with either off, every
   hook reduces to a load-and-branch, takes no [Gc.quick_stat], and
   records nothing — the bit-identical-conformance contract extends to
   these hooks. *)

let on = Atomic.make false
let enabled () = Atomic.get on && Obs.enabled ()
let set_enabled b = Atomic.set on b

type snapshot = {
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_collections : int;
  s_major_collections : int;
  s_compactions : int;
  s_top_heap_words : int;
}

let take () =
  let s = Gc.quick_stat () in
  {
    (* [quick_stat]'s minor_words only advances at GC boundaries on the
       multicore runtime, which would zero out any span too short to
       trigger a minor collection; [Gc.minor_words] reads the allocation
       pointer and is accurate at any instant. *)
    s_minor_words = Gc.minor_words ();
    s_promoted_words = s.Gc.promoted_words;
    s_major_words = s.Gc.major_words;
    s_minor_collections = s.Gc.minor_collections;
    s_major_collections = s.Gc.major_collections;
    s_compactions = s.Gc.compactions;
    s_top_heap_words = s.Gc.top_heap_words;
  }

let start () = if enabled () then Some (take ()) else None

type delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_growth_words : int;
}

let delta_of s0 =
  let s1 = take () in
  {
    minor_words = s1.s_minor_words -. s0.s_minor_words;
    promoted_words = s1.s_promoted_words -. s0.s_promoted_words;
    major_words = s1.s_major_words -. s0.s_major_words;
    minor_collections = s1.s_minor_collections - s0.s_minor_collections;
    major_collections = s1.s_major_collections - s0.s_major_collections;
    compactions = s1.s_compactions - s0.s_compactions;
    top_heap_growth_words = s1.s_top_heap_words - s0.s_top_heap_words;
  }

(* Span attributes stay compact: words as floats (they can exceed an
   int's display comfort), collection counts as ints, and the top-heap
   entry only when the peak actually moved during the span. *)
let attrs_of d =
  let base =
    [
      ("gc_minor_words", Obs.Float d.minor_words);
      ("gc_major_words", Obs.Float d.major_words);
      ("gc_promoted_words", Obs.Float d.promoted_words);
      ("gc_minor_collections", Obs.Int d.minor_collections);
      ("gc_major_collections", Obs.Int d.major_collections);
    ]
  in
  if d.top_heap_growth_words > 0 then
    ("gc_top_heap_growth_words", Obs.Int d.top_heap_growth_words) :: base
  else base

let delta_attrs = function
  | None -> []
  | Some s0 -> attrs_of (delta_of s0)

(* --- counters ---

   Registered lazily so a process that never profiles never creates
   them (keeping CSV counter columns stable for unprofiled runs). *)

let counters =
  lazy
    ( Metric.counter ~unit_:"word" "gc.minor_words",
      Metric.counter ~unit_:"word" "gc.major_words",
      Metric.counter ~unit_:"word" "gc.promoted_words",
      Metric.counter ~unit_:"collection" "gc.minor_collections",
      Metric.counter ~unit_:"collection" "gc.major_collections",
      Metric.counter ~unit_:"word" "gc.top_heap_growth_words" )

let bump d =
  let minor_w, major_w, promoted_w, minor_c, major_c, top_heap =
    Lazy.force counters
  in
  Metric.addf minor_w d.minor_words;
  Metric.addf major_w d.major_words;
  Metric.addf promoted_w d.promoted_words;
  Metric.add minor_c d.minor_collections;
  Metric.add major_c d.major_collections;
  if d.top_heap_growth_words > 0 then Metric.add top_heap d.top_heap_growth_words

(* Depth of nested [with_] frames, tracked per domain (pool workers
   profile their own task trees independently). Only the outermost
   profiled span feeds the [gc.*] counters: nested phases and kernels
   would otherwise count the same allocation two or three times over,
   making a cell's counter delta meaningless. Attributes are per-span
   and carry the nested deltas regardless of depth. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let with_ ?cat ?(attrs = []) ?dur_of ~name f =
  if not (enabled ()) then Obs.Span.with_ ?cat ~attrs ?dur_of ~name f
  else begin
    let s0 = take () in
    let depth = Domain.DLS.get depth_key in
    incr depth;
    Fun.protect
      ~finally:(fun () -> decr depth)
      (fun () ->
        Obs.Span.with_ ?cat ~attrs ?dur_of ~name
          ~attrs_after:(fun () ->
            let d = delta_of s0 in
            if !depth = 1 then bump d;
            attrs_of d)
          f)
  end
