(** Critical-path analysis of request-scoped traces.

    Reconstructs every request's story from a trace (the live collector,
    a flight-recorder dump, or an exported Chrome JSON file) using the
    serve layer's linking conventions — the [("trace", Int id)] attr on
    [serve.admit]/[serve.expire]/[serve.cancel]/[client.retry] instants
    and [queue]/[exec] spans — and decomposes each request's end-to-end
    latency into non-overlapping blame segments:

    - [queue]: admission-queue wait (including queued-then-expired
      attempts, closed from their admit/expire instants);
    - [mem_wait]: the tail of a queue wait spent blocked on the memory
      budget (from the [mem_wait_s] span attr);
    - [exec]: lane execution, minus any child spans;
    - child span names: engine phases / volcano operators on the
      critical path, descended via parent links;
    - [breaker_cooldown] / [retry_backoff]: gaps between attempts,
      labeled from the preceding [client.retry] instant's reason
      (breaker-open sheds cool down, everything else backs off);
    - [other]: uncovered time with no attributable cause.

    Exactness: within each request the segment durations sum *exactly*
    (float equality) to [r_e2e = r_finish -. r_start]. The last segment
    is computed as [e2e -. sum_of_the_rest], which is exact by the
    Sterbenz argument whenever the rest is under twice the total — true
    here since segments are non-overlapping tiles of the request window.
    {!check} asserts the identity; {!blame_total} is the canonical fold
    both sides use. A segment can come out a few ulps negative when
    rounding overshoots; exactness is preserved. *)

type request = {
  r_trace : int;
  r_engine : string;
  r_start : float;
  r_finish : float;
  r_e2e : float;  (** [r_finish -. r_start] *)
  r_ok : bool;  (** some attempt executed with [ok=true] *)
  r_attempts : int;
  r_sheds : int;  (** attempts shed at admission *)
  r_blame : (string * float) list;
      (** per-label seconds; {!blame_total} equals [r_e2e] exactly *)
}

val requests : Obs.event list -> request list
(** One record per trace id, ascending. Events without a trace attr
    contribute only as span-tree parents (engine phases under a live
    exec span). *)

val of_chrome : string -> (request list, string) result
(** {!Trace_export.events_of_chrome} composed with {!requests}. *)

val blame_total : request -> float
(** Left fold of the blame durations in stored order — the fold
    {!check} compares against [r_e2e]. *)

val check : request list -> (int, string) result
(** Verify the blame-sum identity for every request: [Ok n] with the
    number of requests checked, or the first violation with its trace
    id and the offending difference. *)

type profile_entry = {
  p_label : string;
  p_requests : int;  (** requests where the label appears *)
  p_total : float;  (** summed seconds across requests *)
  p_mean_share : float;  (** mean of per-request share of e2e *)
  p_p50_share : float;
  p_p99_share : float;
}

val profile : request list -> profile_entry list
(** Cross-request blame profile, largest total first. Shares are per
    request ([d /. e2e], 0 for requests without the label) so the p50
    and p99 columns read "what fraction of a request's latency this
    segment takes at the median / in the tail". *)

type diff_entry = {
  d_label : string;
  d_base_mean : float;  (** mean seconds per request, base capture *)
  d_new_mean : float;
  d_delta : float;  (** [d_new_mean -. d_base_mean] *)
}

val diff : request list -> request list -> diff_entry list
(** Trace-diff regression attributor: compare two captures label by
    label (union), sorted by absolute latency movement. The pseudo-label
    [e2e] tracks mean end-to-end latency itself. *)

val render_requests : ?limit:int -> request list -> string
val render_profile : profile_entry list -> string

val render_diff : diff_entry list -> string
(** Table plus a one-line verdict naming the segment where latency
    moved the most. *)
