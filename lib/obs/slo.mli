(** SLO monitor: multi-window burn-rate alerting over sliding windows.

    An objective declares a target good-fraction [T] over a long window;
    the error budget is [1 - T] and the burn rate of a window is
    [bad_fraction / (1 - T)]. An alert fires when the burn over both the
    long window and a short window ([long_s / 12]) reaches [factor] with
    at least [min_events] events observed; it resolves when the
    short-window burn drops below [factor] again.

    The monitor is driven by an explicit clock, so under the
    deterministic simulated server the same scenario produces the same
    alerts at the same instants, every run — which is what lets CI gate
    on a committed [BENCH_slo.json]. Each fire/resolve also emits an
    [slo.fire] / [slo.resolve] instant on the sim track of the Chrome
    trace (gated on the {!Obs} flag). *)

type kind =
  | Availability  (** good = request served (not shed/failed/expired) *)
  | Latency_under of float  (** good = served AND latency <= bound *)

type objective = private {
  o_name : string;
  o_kind : kind;
  target : float;
  long_s : float;
  factor : float;
  min_events : int;
}

(** Raises [Invalid_argument] unless [target] is in (0,1) and [long_s],
    [factor] are positive. [factor] defaults to 10 (the fast-burn page
    threshold), [min_events] to 20. *)
val objective :
  ?factor:float ->
  ?min_events:int ->
  name:string ->
  kind:kind ->
  target:float ->
  long_s:float ->
  unit ->
  objective

val short_s : objective -> float

(** Availability 99% + latency-under-[4 * scale_s] 95%, both over a
    [20 * scale_s] long window — scaled so quick scenarios can trip
    them. *)
val defaults : scale_s:float -> objective list

type alert = {
  a_slo : string;
  a_at : float;
  a_firing : bool;  (** [true] = fired, [false] = resolved *)
  a_burn_long : float;
  a_burn_short : float;
}

type t

val create : ?on_alert:(alert -> unit) -> objectives:objective list -> unit -> t

(** [observe m ~now ~ok ~latency_s] records one response outcome at
    clock time [now] and evaluates every objective. [now] must be
    non-decreasing per monitor. *)
val observe : t -> now:float -> ok:bool -> latency_s:float -> unit

(** All fire/resolve transitions, in chronological order. *)
val alerts : t -> alert list

(** Names of objectives currently firing. *)
val firing : t -> string list

(** Per-objective [(name, burn_long, burn_short, events_long, firing)]. *)
val summary : t -> (string * float * float * int * bool) list
