(* Sinks for the collected trace: a Chrome trace_event JSON exporter
   (loadable in chrome://tracing and Perfetto) validated against the
   shared minimal JSON parser ({!Json}), and a text flame/summary
   renderer for the CLI. *)

let escape = Json.escape

let json_of_value = function
  | Obs.Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Obs.Int i -> string_of_int i
  | Obs.Float f ->
    if Float.is_finite f then Printf.sprintf "%.9g" f
    else Printf.sprintf "\"%s\"" (Float.to_string f)
  | Obs.Bool b -> string_of_bool b

let args_json attrs =
  attrs
  |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (json_of_value v))
  |> String.concat ","

(* --- Chrome trace_event export --- *)

let pid_of = function Obs.Wall -> 1 | Obs.Sim -> 2

let us t = t *. 1e6

let chrome_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n";
    Buffer.add_string buf line
  in
  (* Process/thread naming metadata so Perfetto labels the two clock
     domains and per-node tracks. *)
  emit
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"wall clock\"}}";
  emit
    "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"simulated clock\"}}";
  let tids = Hashtbl.create 8 in
  let note_tid track tid =
    let key = (pid_of track, tid) in
    if tid > 0 && not (Hashtbl.mem tids key) then begin
      Hashtbl.add tids key ();
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"node %d\"}}"
           (fst key) tid tid)
    end
  in
  List.iter
    (fun ev ->
      match ev with
      | Obs.Span_ev s ->
        note_tid s.track s.tid;
        (* "span_id", not "id": serve-layer spans already carry a
           request-scoped "id" attr and the two must not collide. *)
        let args =
          args_json
            (s.attrs
            @ [ ("span_id", Obs.Int s.id) ]
            @ (if s.parent >= 0 then [ ("parent", Obs.Int s.parent) ] else []))
        in
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
             (pid_of s.track) s.tid (escape s.name) (escape s.cat) (us s.t0)
             (us s.dur) args)
      | Obs.Instant_ev i ->
        note_tid i.track i.tid;
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"ts\":%.3f,\"args\":{%s}}"
             (pid_of i.track) i.tid (escape i.name) (us i.ts)
             (args_json i.attrs)))
    events;
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

(* --- minimal JSON parser, factored into {!Json} (the bench-baseline
   pipeline reuses it); re-exported here so trace consumers keep one
   import. --- *)

type json = Json.t =
  | Null
  | JBool of bool
  | Num of float
  | JStr of string
  | Arr of json list
  | Obj of (string * json) list

let parse = Json.parse

(* Validate a serialized trace against the trace_event schema essentials:
   top-level object with a traceEvents array; every event an object with
   string "ph"/"name" and numeric "pid"/"tid"/"ts" (metadata "M" events
   are exempt from "ts"); complete ("X") events carry a non-negative
   numeric "dur". Returns the number of non-metadata events. *)
let validate_chrome serialized =
  match parse serialized with
  | Error e -> Error ("trace is not valid JSON: " ^ e)
  | Ok (Obj fields) -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Arr evs) -> (
      let check i = function
        | Obj f -> (
          let str k = match List.assoc_opt k f with Some (JStr s) -> Some s | _ -> None in
          let num k = match List.assoc_opt k f with Some (Num x) -> Some x | _ -> None in
          match str "ph", str "name" with
          | None, _ -> Error (Printf.sprintf "event %d: missing ph" i)
          | _, None -> Error (Printf.sprintf "event %d: missing name" i)
          | Some ph, Some _ ->
            if num "pid" = None || num "tid" = None then
              Error (Printf.sprintf "event %d: missing pid/tid" i)
            else if ph = "M" then Ok 0
            else if num "ts" = None then
              Error (Printf.sprintf "event %d: missing ts" i)
            else if
              ph = "X"
              && match num "dur" with Some d -> d < 0. | None -> true
            then Error (Printf.sprintf "event %d: X event needs dur >= 0" i)
            else Ok 1)
        | _ -> Error (Printf.sprintf "event %d: not an object" i)
      in
      let rec go i count = function
        | [] -> Ok count
        | ev :: tl -> (
          match check i ev with
          | Error e -> Error e
          | Ok k -> go (i + 1) (count + k) tl)
      in
      go 0 0 evs)
    | _ -> Error "missing traceEvents array")
  | Ok _ -> Error "top level is not an object"

(* --- Chrome JSON import ---

   Inverse of [chrome_json], for analyzing exported dumps offline. The
   exporter stashes the span id and parent link in "args", so the
   original linked structure comes back exactly; traces produced by
   other tools (no "id" arg) get fresh synthetic ids. Strict by design:
   truncated or malformed input and duplicate span ids are rejected with
   a positioned error rather than mis-linking spans. *)

let events_of_chrome serialized =
  let ( let* ) = Result.bind in
  let* () =
    match validate_chrome serialized with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  match parse serialized with
  | Error e -> Error e
  | Ok json -> (
    let evs =
      match json with
      | Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Arr evs) -> evs
        | _ -> [])
      | _ -> []
    in
    (* Numeric args that are integral come back as Int so trace ids,
       attempts and counters keep their exported type; everything else
       stays Float. *)
    let value_of = function
      | JStr s -> Obs.Str s
      | JBool b -> Obs.Bool b
      | Num x ->
        if Float.is_integer x && Float.abs x <= 2. ** 52. then
          Obs.Int (int_of_float x)
        else Obs.Float x
      | Null -> Obs.Str "null"
      | (Arr _ | Obj _) as j -> Obs.Str (Json.to_string j)
    in
    let seen_ids = Hashtbl.create 64 in
    let synth = ref (-2) in
    let out = ref [] in
    let err = ref None in
    let fail i msg =
      if !err = None then err := Some (Printf.sprintf "event %d: %s" i msg)
    in
    List.iteri
      (fun i ev ->
        if !err = None then
          match ev with
          | Obj f -> (
            let str k =
              match List.assoc_opt k f with Some (JStr s) -> Some s | _ -> None
            in
            let num k =
              match List.assoc_opt k f with Some (Num x) -> Some x | _ -> None
            in
            let args =
              match List.assoc_opt "args" f with
              | Some (Obj kvs) -> List.map (fun (k, v) -> (k, value_of v)) kvs
              | _ -> []
            in
            let track_of_pid () =
              match num "pid" with
              | Some 1. -> Ok Obs.Wall
              | Some 2. -> Ok Obs.Sim
              | Some p -> Error (Printf.sprintf "unknown pid %g" p)
              | None -> Error "missing pid"
            in
            let tid = match num "tid" with Some t -> int_of_float t | None -> 0 in
            match str "ph" with
            | Some "M" -> ()
            | Some "X" -> (
              match track_of_pid () with
              | Error e -> fail i e
              | Ok track -> (
                let name = Option.value ~default:"" (str "name") in
                let cat = Option.value ~default:"span" (str "cat") in
                let ts = Option.value ~default:0. (num "ts") /. 1e6 in
                let dur = Option.value ~default:0. (num "dur") /. 1e6 in
                let id, parent, attrs =
                  let id =
                    match List.assoc_opt "span_id" args with
                    | Some (Obs.Int id) -> id
                    | _ ->
                      decr synth;
                      !synth + 1
                  in
                  let parent =
                    match List.assoc_opt "parent" args with
                    | Some (Obs.Int p) -> p
                    | _ -> -1
                  in
                  ( id,
                    parent,
                    List.filter
                      (fun (k, _) -> k <> "span_id" && k <> "parent")
                      args )
                in
                if Hashtbl.mem seen_ids id then
                  fail i (Printf.sprintf "duplicate span id %d" id)
                else begin
                  Hashtbl.add seen_ids id ();
                  out :=
                    Obs.Span_ev
                      { id; parent; name; cat; track; tid; t0 = ts; dur; attrs }
                    :: !out
                end))
            | Some "i" -> (
              match track_of_pid () with
              | Error e -> fail i e
              | Ok track ->
                let name = Option.value ~default:"" (str "name") in
                let ts = Option.value ~default:0. (num "ts") /. 1e6 in
                out := Obs.Instant_ev { name; track; tid; ts; attrs = args } :: !out)
            | Some ph -> fail i (Printf.sprintf "unsupported ph %S" ph)
            | None -> fail i "missing ph")
          | _ -> fail i "not an object")
      evs;
    match !err with Some e -> Error e | None -> Ok (List.rev !out))

(* --- tree reconstruction ---

   Wall spans carry parent ids; Sim spans are flat per (track, tid) and
   nest by time containment. One containment pass per track group covers
   both (parent links and containment agree for well-nested wall spans
   because children are recorded before parents but share the parent's
   window). *)

type node = {
  span : Obs.span;
  depth : int;
  mutable child_sum : float;
}

let spans_of events =
  List.filter_map (function Obs.Span_ev s -> Some s | _ -> None) events

let group_key s = (s.Obs.track, s.Obs.tid)

(* Returns nodes in (t0, -dur) order with depth and child-duration sums
   filled in, grouped per (track, tid). *)
let tree events =
  let spans = spans_of events in
  let keys =
    List.fold_left
      (fun acc s -> if List.mem (group_key s) acc then acc else acc @ [ group_key s ])
      [] spans
  in
  List.concat_map
    (fun key ->
      let group = List.filter (fun s -> group_key s = key) spans in
      let sorted =
        List.sort
          (fun a b ->
            match compare a.Obs.t0 b.Obs.t0 with
            | 0 -> (
              match compare b.Obs.dur a.Obs.dur with
              | 0 -> compare a.Obs.id b.Obs.id
              | c -> c)
            | c -> c)
          group
      in
      let eps = 1e-9 in
      let open_stack : node list ref = ref [] in
      let out = ref [] in
      List.iter
        (fun s ->
          let rec unwind () =
            match !open_stack with
            | top :: rest
              when top.span.Obs.t0 +. top.span.Obs.dur <= s.Obs.t0 +. eps ->
              open_stack := rest;
              unwind ()
            | _ -> ()
          in
          unwind ();
          let depth = List.length !open_stack in
          (match !open_stack with
          | parent :: _ -> parent.child_sum <- parent.child_sum +. s.Obs.dur
          | [] -> ());
          let node = { span = s; depth; child_sum = 0. } in
          out := node :: !out;
          open_stack := node :: !open_stack)
        sorted;
      List.rev !out)
    keys

(* --- aggregated summary --- *)

type agg = { name : string; calls : int; total : float; self : float }

let span_summary ?exclude_cat events =
  let keep s =
    match exclude_cat with None -> true | Some c -> s.Obs.cat <> c
  in
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun node ->
      let s = node.span in
      if keep s then begin
        let calls, total, self =
          match Hashtbl.find_opt tbl s.Obs.name with
          | Some e -> e
          | None ->
            let e = (ref 0, ref 0., ref 0.) in
            Hashtbl.add tbl s.Obs.name e;
            order := s.Obs.name :: !order;
            e
        in
        incr calls;
        total := !total +. s.Obs.dur;
        self := !self +. Float.max 0. (s.Obs.dur -. node.child_sum)
      end)
    (tree events);
  !order
  |> List.rev_map (fun name ->
         let calls, total, self = Hashtbl.find tbl name in
         { name; calls = !calls; total = !total; self = !self })
  |> List.sort (fun a b -> compare b.total a.total)

let top_spans ?(k = 5) ?exclude_cat events =
  span_summary ?exclude_cat events
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun a -> (a.name, a.total))

(* --- text flame + summary renderer --- *)

let track_label = function Obs.Wall -> "wall clock" | Obs.Sim -> "simulated clock"

let flame ?(max_lines = 120) events =
  let buf = Buffer.create 1024 in
  let nodes = tree events in
  let last_key = ref None in
  let printed = ref 0 and skipped = ref 0 in
  List.iter
    (fun node ->
      let s = node.span in
      let key = group_key s in
      if !last_key <> Some key then begin
        last_key := Some key;
        Buffer.add_string buf
          (Printf.sprintf "-- %s%s --\n" (track_label s.Obs.track)
             (if s.Obs.tid > 0 then Printf.sprintf ", node %d" s.Obs.tid else ""))
      end;
      if !printed < max_lines then begin
        incr printed;
        let attrs =
          match s.Obs.attrs with
          | [] -> ""
          | l ->
            "  ["
            ^ String.concat ", "
                (List.map
                   (fun (k, v) -> k ^ "=" ^ Obs.string_of_value v)
                   l)
            ^ "]"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s %10.6fs%s\n"
             (String.make (2 * node.depth) ' ')
             (max 1 (44 - (2 * node.depth)))
             s.Obs.name s.Obs.dur attrs)
      end
      else incr skipped)
    nodes;
  if !skipped > 0 then
    Buffer.add_string buf (Printf.sprintf "... (%d more spans)\n" !skipped);
  Buffer.contents buf

let summary ?exclude_cat events =
  let aggs = span_summary ?exclude_cat events in
  let grand = List.fold_left (fun acc a -> acc +. a.self) 0. aggs in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %6s %12s %12s %6s\n" "span" "calls" "total_s"
       "self_s" "self%");
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%-44s %6d %12.6f %12.6f %5.1f%%\n" a.name a.calls
           a.total a.self
           (if grand > 0. then 100. *. a.self /. grand else 0.)))
    aggs;
  Buffer.contents buf
