(** Structured bench output (one [BENCH_<section>.json] per bench
    section) and a noise-aware regression diff between two such files.

    Schema v1: a header ([genbase_bench] version, section, git rev,
    quick flag) plus one record per measured configuration. The diff
    compares medians key-by-key ([name]/[engine]/[query]/[size]/[unit])
    with a relative threshold {e and} a unit-aware absolute floor, so
    microsecond jitter on fast benchmarks never trips the gate while a
    genuine 2x slowdown always does. *)

val schema_version : int

type better = Lower | Higher
(** Direction of goodness for a record's statistic: runtimes are
    [Lower], availability percentages are [Higher]. The diff flips its
    regression test accordingly. *)

type record = {
  name : string;
  engine : string;  (** "" when not engine-specific *)
  query : string;  (** "" when not query-specific *)
  size : string;  (** dataset-size label, "" when n/a *)
  unit_ : string;  (** "s", "ns", "pct", ... *)
  better : better;
  iterations : int;  (** finite samples behind the statistics *)
  mean : float;
  median : float;  (** the comparison statistic *)
  p95 : float;
  min_v : float;
  max_v : float;
  counters : (string * float) list;  (** gc.* deltas, row counts, phase seconds *)
}

type file = {
  section : string;
  git_rev : string;
  quick : bool;
  records : record list;
}

val make :
  name:string ->
  ?engine:string ->
  ?query:string ->
  ?size:string ->
  ?unit_:string ->
  ?better:better ->
  ?counters:(string * float) list ->
  float list ->
  record option
(** Build a record from raw samples. Non-finite samples (failed cells
    report infinite totals) are dropped first; [None] when nothing
    finite remains. *)

val git_rev : unit -> string
(** Current commit: [GENBASE_GIT_REV] env override, else [.git/HEAD]
    (following one [ref:] indirection into loose or packed refs), else
    ["unknown"]. No subprocess. *)

val to_string : file -> string
(** Serialize — one record per line so committed baselines diff
    readably. *)

val of_string : string -> (file, string) result

val path_of_section : string -> string
(** ["BENCH_<section>.json"]. *)

val write :
  ?dir:string -> section:string -> quick:bool -> record list -> string
(** Stamp the header (current {!git_rev}) and write
    [BENCH_<section>.json] under [dir] (default cwd); returns the
    path. *)

val read : string -> (file, string) result

type verdict = Regression | Improvement | Within_noise

type comparison = {
  c_record : record;  (** the candidate-side record *)
  base_median : float;
  cand_median : float;
  change_pct : float;  (** signed; positive = candidate larger *)
  verdict : verdict;
}

type report = {
  threshold_pct : float;
  comparisons : comparison list;
  only_base : record list;
  only_cand : record list;
}

val default_min_effect : string -> float
(** Absolute change floor per unit under which any relative change is
    noise: 5 ms for "s", 500 for "ns", 1 point for "pct". *)

val diff :
  ?threshold_pct:float ->
  ?min_effect:(string -> float) ->
  file ->
  file ->
  report
(** [diff base candidate]: median-vs-median per shared key. A change is
    significant only when it exceeds {e both} [threshold_pct] (relative,
    default 20%) and [min_effect unit] (absolute); significant changes
    in the record's worse direction are {!Regression}s. Records with a
    non-finite median on either side are skipped. *)

val regressions : report -> comparison list
val improvements : report -> comparison list

val render_report : report -> string
(** Table of comparisons plus added/removed keys and a one-line
    summary. *)
