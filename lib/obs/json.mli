(** Minimal JSON value type, parser and serializer — shared by the Chrome
    trace exporter ({!Trace_export}) and the bench-baseline pipeline
    ({!Bench_json}). ASCII-oriented and dependency-free; sufficient for
    (and only intended for) the JSON this repository itself writes. *)

type t =
  | Null
  | JBool of bool
  | Num of float
  | JStr of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val number_to_string : float -> string
(** Integers render without a decimal point; other finite floats keep 12
    significant digits (enough to round-trip benchmark timings while
    staying diff-readable); non-finite values render as [null]. *)

val to_string : t -> string
(** Compact single-line serialization. [parse (to_string v)] succeeds for
    every [v] that contains no non-finite number. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries an offset-annotated
    message. Rejects trailing garbage. *)

(** {1 Tree accessors} — for consumers walking parsed documents. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_num : t -> float option
val to_arr : t -> t list option
