(* Monotonic counters and log-bucketed histograms, registered per
   subsystem in a process-global registry. Additions are gated on
   [Obs.enabled] so the disabled mode costs one branch and perturbs
   nothing. Snapshots are sorted by name, giving CSV consumers a stable
   column order independent of registration order.

   Domain-safety: counter cells are atomics (CAS-loop accumulate, so
   concurrent adds from pool workers never lose increments), each
   histogram carries its own lock, and both registries sit behind a
   mutex. The uncontended cost is a handful of nanoseconds per add —
   noise against the gated-off fast path that dominates benchmarks. *)

type counter = { name : string; unit_ : string; v : float Atomic.t }

let registry_m = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

(* Re-registering a name with a *different* explicit unit is a bug at
   the second call site: the first unit would win silently and every
   consumer of the snapshot would mislabel the column. Omitting [?unit_]
   means "whatever is registered" and always matches. *)
let check_unit ~what ~name ~registered = function
  | None -> ()
  | Some u when u = registered -> ()
  | Some u ->
    invalid_arg
      (Printf.sprintf "Metric.%s: %s already registered with unit %S (got %S)"
         what name registered u)

let counter ?unit_ name =
  Mutex.lock registry_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_m)
    (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c ->
        check_unit ~what:"counter" ~name ~registered:c.unit_ unit_;
        c
      | None ->
        let c =
          { name; unit_ = Option.value unit_ ~default:""; v = Atomic.make 0. }
        in
        Hashtbl.add counters name c;
        c)

let rec atomic_addf cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_addf cell x

let add c n = if Obs.enabled () then atomic_addf c.v (float_of_int n)
let addf c x = if Obs.enabled () then atomic_addf c.v x
let value c = Atomic.get c.v
let counter_unit c = c.unit_

(* --- histograms: power-of-two buckets over positive observations --- *)

let n_buckets = 64

type histogram = {
  h_name : string;
  h_unit : string;
  h_lock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;  (** index = clamped binary exponent + 32 *)
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram ?unit_ name =
  Mutex.lock registry_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_m)
    (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h ->
        check_unit ~what:"histogram" ~name ~registered:h.h_unit unit_;
        h
      | None ->
        let h =
          {
            h_name = name;
            h_unit = Option.value unit_ ~default:"";
            h_lock = Mutex.create ();
            count = 0;
            sum = 0.;
            min_v = infinity;
            max_v = neg_infinity;
            buckets = Array.make n_buckets 0;
          }
        in
        Hashtbl.add histograms name h;
        h)

let bucket_of x =
  if x <= 0. then 0
  else
    let _, e = Float.frexp x in
    max 0 (min (n_buckets - 1) (e + 32))

let bucket_upper i = Float.ldexp 1.0 (i - 32)

let observe h x =
  if Obs.enabled () then begin
    Mutex.lock h.h_lock;
    h.count <- h.count + 1;
    h.sum <- h.sum +. x;
    if x < h.min_v then h.min_v <- x;
    if x > h.max_v then h.max_v <- x;
    let i = bucket_of x in
    h.buckets.(i) <- h.buckets.(i) + 1;
    Mutex.unlock h.h_lock
  end

type hist_stats = {
  count : int;
  sum : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;  (** linearly interpolated within the bucket *)
  p99 : float;
}

(* Interpolated quantile: find the bucket where the cumulative count
   crosses the target rank, then place the quantile linearly between the
   bucket's bounds by rank position within it. Clamped to the observed
   [min_v, max_v] so degenerate cells (one sample, one bucket) report
   the sample rather than a bound. *)
let percentile (h : histogram) q =
  if h.count = 0 then 0.
  else begin
    let target = Float.to_int (Float.of_int h.count *. q) + 1 in
    let target = min target h.count in
    let seen = ref 0 and ans = ref h.max_v in
    (try
       for i = 0 to n_buckets - 1 do
         let n = h.buckets.(i) in
         if n > 0 && !seen + n >= target then begin
           let lower = if i = 0 then 0. else bucket_upper (i - 1) in
           let upper = bucket_upper i in
           let frac = Float.of_int (target - !seen) /. Float.of_int n in
           ans := lower +. (frac *. (upper -. lower));
           raise Exit
         end;
         seen := !seen + n
       done
     with Exit -> ());
    Float.min (Float.max !ans h.min_v) h.max_v
  end

let stats (h : histogram) =
  Mutex.lock h.h_lock;
  let r =
    {
      count = h.count;
      sum = h.sum;
      mean = (if h.count = 0 then 0. else h.sum /. Float.of_int h.count);
      min_v = (if h.count = 0 then 0. else h.min_v);
      max_v = (if h.count = 0 then 0. else h.max_v);
      p50 = percentile h 0.5;
      p99 = percentile h 0.99;
    }
  in
  Mutex.unlock h.h_lock;
  r

(* --- snapshots --- *)

let snapshot () =
  Mutex.lock registry_m;
  let r =
    Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.v) :: acc) counters []
  in
  Mutex.unlock registry_m;
  List.sort compare r

let hist_snapshot () =
  Mutex.lock registry_m;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
  Mutex.unlock registry_m;
  List.map (fun h -> (h.h_name, stats h)) hs
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let delta before =
  snapshot ()
  |> List.filter_map (fun (n, v) ->
         let b = Option.value (List.assoc_opt n before) ~default:0. in
         if v -. b <> 0. then Some (n, v -. b) else None)

let reset () =
  Mutex.lock registry_m;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
  Mutex.unlock registry_m;
  List.iter (fun c -> Atomic.set c.v 0.) cs;
  List.iter
    (fun (h : histogram) ->
      Mutex.lock h.h_lock;
      h.count <- 0;
      h.sum <- 0.;
      h.min_v <- infinity;
      h.max_v <- neg_infinity;
      Array.fill h.buckets 0 n_buckets 0;
      Mutex.unlock h.h_lock)
    hs
