(** Flight recorder: a bounded, domain-safe ring of recent trace events
    with tail-based sampling and anomaly-triggered Chrome-trace dumps.

    Unlike the in-memory collector ({!Obs.set_enabled}), which keeps
    everything and is too expensive to leave on under load, the recorder
    is built to run always-on: events stream through {!Obs.set_sink}
    into a fixed-capacity ring (drop-oldest, drops counted), and nothing
    is serialized until a trigger fires — an SLO burn-rate alert, a
    circuit breaker opening, a shed spike, a single request crossing the
    tail-latency threshold, or a manual request. A dump snapshots the
    ring and keeps only *interesting* traces: every trace that was slow
    or failed, plus a deterministic 1-in-[sample_every] sample of fast
    ones; the rest are discarded (tail-based sampling). Context events
    that carry no trace id (breaker transitions, SLO instants, log
    lines) always survive the filter.

    With the recorder stopped, serve-path hooks reduce to the same
    single-atomic-load-and-branch as disabled tracing. All decisions are
    driven by the caller's clock in observation order, so on the
    simulated server the kept-trace sets and dump instants are
    bit-identical across runs. *)

type config = {
  capacity : int;  (** ring slots; oldest events are overwritten *)
  sample_every : int;
      (** keep 1 of every N fast traces; [<= 0] keeps none of them *)
  tail_latency_s : float;
      (** a response at or over this latency marks its trace kept and
          fires a {!Tail_latency} trigger *)
  shed_spike : int;
      (** sheds within [shed_window_s] that fire a {!Shed_spike} trigger *)
  shed_window_s : float;
  cooldown_s : float;  (** minimum clock gap between automatic dumps *)
  max_dumps : int;  (** automatic-dump cap per run; manual dumps exempt *)
}

val default : config

type reason = Slo_fire | Breaker_open | Shed_spike | Tail_latency | Manual

val reason_label : reason -> string

type dump = {
  d_seq : int;  (** 0-based dump sequence number *)
  d_reason : reason;
  d_at : float;  (** trigger time on the caller's clock *)
  d_events : Obs.event list;
      (** surviving events, oldest first, terminated by a
          [recorder.dump] instant stamped at [d_at] *)
  d_kept : int list;  (** kept trace ids, ascending *)
  d_sampled : int list;
      (** subset of [d_kept] kept only by fast-trace sampling *)
  d_ring_dropped : int;  (** ring drop-oldest count at dump time *)
}

type stats = {
  s_seen : int;  (** events offered to the ring *)
  s_ring_dropped : int;
  s_responses : int;
  s_tail_kept : int;  (** traces kept for crossing [tail_latency_s] *)
  s_fail_kept : int;  (** traces kept for a failed disposition *)
  s_fast_sampled : int;
  s_fast_discarded : int;
  s_dumps : int;
  s_suppressed : int;  (** automatic triggers eaten by cooldown/cap *)
}

val start : ?config:config -> unit -> unit
(** Reset all recorder state, install the {!Obs} sink, and set the
    recording bit. Idempotent; restarting clears prior dumps. *)

val stop : unit -> unit
(** Clear the recording bit. Ring contents and dumps remain readable. *)

val recording : unit -> bool

val clear : unit -> unit
(** Drop ring contents, sampling state, dumps and counters, keeping the
    configuration and the recording bit as they are. *)

val observe_response : trace:int -> latency_s:float -> ok:bool -> now:float -> unit
(** Feed one request outcome. The keep decision per trace is sticky: a
    slow or failed attempt upgrades the trace to kept even if an earlier
    attempt sampled it out. Fast traces consume one deterministic
    counter tick on first sight only. No-op while not recording. *)

val observe_shed : now:float -> unit
(** Feed one shed event; [shed_spike] of these within [shed_window_s]
    fire a {!Shed_spike} trigger. No-op while not recording. *)

val trigger : ?reason:reason -> now:float -> unit -> unit
(** Fire a trigger (default {!Manual}). Automatic reasons respect the
    cooldown and [max_dumps]; manual dumps bypass both. No-op while not
    recording. *)

val dumps : unit -> dump list
(** Dumps taken since the last {!start}/{!clear}, oldest first. *)

val stats : unit -> stats

val chrome_of_dump : dump -> string
(** Serialize a dump with {!Trace_export.chrome_json}; the result passes
    {!Trace_export.validate_chrome}. *)
