(** Labeled metric families with live quantiles.

    Counters, gauges and histograms keyed by label sets ([engine],
    [query], [disposition], ...), with explicit bucket boundaries and
    within-bucket linear interpolation for honest p50/p99/p999, plus a
    sliding-window aggregator so tail latency is queryable mid-run.

    The subsystem is gated on its own flag, independent of {!Obs}: with
    telemetry disabled every mutation hook is a single atomic load and
    branch, preserving the disabled-mode overhead contract. Family
    registration is done once at module top level and is never gated.

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*] and label names
    the same without the colon (the Prometheus exposition rules), so
    {!Expo} never needs to escape names. Label values are arbitrary.
    Label sets are canonicalized — sorted by name, duplicate names
    rejected — so observation sites can list labels in any order. *)

type labels = (string * string) list

val enabled : unit -> bool
val set_enabled : bool -> unit

type kind = Counter | Gauge | Histogram

type counter_family
type gauge_family
type hist_family

(** Default latency buckets in seconds: a 1–2.5–5 ladder from 0.5 ms to
    250 s, plus the implicit +Inf overflow bucket. *)
val default_buckets : float array

(** [counter_family name] finds or registers the family. Re-registering
    a name with a different kind raises [Invalid_argument] — a silent
    winner would skew every later observation. The first non-empty
    [help] wins. *)
val counter_family : ?help:string -> string -> counter_family

val gauge_family : ?help:string -> string -> gauge_family

(** [hist_family ?buckets name] — [buckets] are the finite upper bounds,
    strictly increasing (default {!default_buckets}). Re-registering
    with a different grid raises [Invalid_argument]. *)
val hist_family : ?help:string -> ?buckets:float array -> string -> hist_family

val family_name : counter_family -> string

(** [incr f labels] adds [by] (default 1, must be >= 0) to the cell.
    No-op while disabled. *)
val incr : counter_family -> ?by:float -> labels -> unit

(** [set f labels v] sets the gauge cell. No-op while disabled. *)
val set : gauge_family -> labels -> float -> unit

(** [observe f labels v] records [v] into the histogram cell. No-op
    while disabled. *)
val observe : hist_family -> labels -> float -> unit

(** Current value of a counter cell (0 if never touched). *)
val value : counter_family -> labels -> float

(** Current value of a gauge cell (0 if never set). *)
val gauge_value : gauge_family -> labels -> float

(** Interpolated quantile of one histogram cell: the bucket where the
    cumulative count crosses [q * total], linearly interpolated between
    its bounds. [None] on an empty cell. A quantile landing in the
    overflow bucket reports the largest finite bound. *)
val quantile : hist_family -> labels -> float -> float option

(** Like {!quantile} but merging every cell of the family (all cells
    share one grid). *)
val quantile_agg : hist_family -> float -> float option

(** Width of the bucket containing [v] — the resolution of any quantile
    reported from that bucket, hence the natural agreement tolerance
    against an exact post-hoc percentile. [infinity] past the last
    finite bound. *)
val bucket_width : hist_family -> float -> float

(** {1 Snapshots} — the input to {!Expo.render}. *)

type value_snap =
  | Sample of float
  | Hist_sample of {
      le : (float * int) list;
          (** cumulative counts per upper bound, [+Inf] last *)
      hsum : float;
      hcount : int;
    }

type family_snap = {
  fam : string;
  help : string;
  kind : kind;
  rows : (labels * value_snap) list;  (** sorted by label set *)
}

(** Every registered family, sorted by name, rows sorted by label set —
    a canonical order, so rendering a snapshot is deterministic. *)
val snapshot : unit -> family_snap list

(** Zero all values and drop all cells; registrations survive. *)
val reset : unit -> unit

(** Drop all registrations (tests only). *)
val clear : unit -> unit

(** {1 Sliding windows}

    A ring of [windows] bucketed sub-windows of [width_s] seconds,
    advanced lazily by the caller's clock — sim seconds or wall seconds,
    the structure doesn't care. Observing or querying at time [t] zeroes
    any sub-windows the clock skipped; observations older than the ring
    are dropped. Windows are standalone per-run objects, not registered
    families. *)
module Window : sig
  type t

  val create :
    ?width_s:float -> ?windows:int -> ?buckets:float array -> unit -> t

  (** Total span covered by the ring, [width_s * windows] seconds. *)
  val horizon_s : t -> float

  val observe : t -> now:float -> float -> unit

  (** Events in the sub-windows intersecting [now - horizon_s, now]. *)
  val count : t -> now:float -> horizon_s:float -> int

  val mean : t -> now:float -> horizon_s:float -> float option

  (** Interpolated quantile over the last [horizon_s] seconds. *)
  val quantile : t -> now:float -> horizon_s:float -> float -> float option

  val advanced : t -> int
  (** Sub-window slots recycled so far by lazy advancement — how much of
      the ring has rolled over since creation. *)

  val dropped : t -> int
  (** Observations dropped for arriving more than the ring's span behind
      the newest sub-window. Non-zero means the live quantiles have
      silent gaps; snapshot consumers should surface it. *)
end
