(* SLO monitor: declarative availability / latency objectives evaluated
   as multi-window burn rates over sliding good/bad event rings.

   Burn rate is the Google SRE formulation: with a target good-fraction
   T, the error budget is (1 - T) and

     burn(window) = bad_fraction(window) / (1 - T)

   burn = 1 means the service is consuming its budget exactly at the
   rate that exhausts it by the end of the SLO period; burn = 10 means
   ten times that fast. An alert fires when burn over BOTH a long window
   and a short window (long / 12, the classic 1h/5m pairing) meets the
   factor — the long window supplies significance, the short window
   makes the alert reset quickly once the incident ends. The alert
   resolves when the short-window burn drops back below the factor.

   The monitor is driven by an explicit clock (sim or wall seconds), so
   alert instants are bit-reproducible under the deterministic server:
   the same scenario always fires the same alerts at the same times. *)

type kind = Availability | Latency_under of float

type objective = {
  o_name : string;
  o_kind : kind;
  target : float;  (* good fraction in (0,1) *)
  long_s : float;
  factor : float;
  min_events : int;
}

let objective ?(factor = 10.) ?(min_events = 20) ~name ~kind ~target ~long_s ()
    =
  if not (target > 0. && target < 1.) then
    invalid_arg "Slo.objective: target must be in (0,1)";
  if not (Float.is_finite long_s && long_s > 0.) then
    invalid_arg "Slo.objective: long_s must be positive";
  if not (factor > 0.) then invalid_arg "Slo.objective: factor must be positive";
  { o_name = name; o_kind = kind; target; long_s; factor; min_events }

let short_s o = o.long_s /. 12.

(* Defaults scaled to the workload's service-time scale: availability
   99% and latency-under-4x-mean 95%, both over a long window of
   20 x scale so a quick scenario can trip them. *)
let defaults ~scale_s =
  [
    objective ~name:"availability" ~kind:Availability ~target:0.99
      ~long_s:(20. *. scale_s) ();
    objective ~name:"latency"
      ~kind:(Latency_under (4. *. scale_s))
      ~target:0.95 ~long_s:(20. *. scale_s) ();
  ]

type alert = {
  a_slo : string;
  a_at : float;
  a_firing : bool;  (* true = fired, false = resolved *)
  a_burn_long : float;
  a_burn_short : float;
}

(* Per-objective state: one good/bad ring at resolution long_s / 48, so
   the short window (long / 12) spans 4 slots exactly. *)
type ostate = {
  obj : objective;
  slot_s : float;
  n_slots : int;  (* covers the long window plus one partial slot *)
  good : int array;
  bad : int array;
  mutable cur : int;  (* absolute slot index of the newest slot *)
  mutable firing : bool;
}

type t = {
  states : ostate list;
  mutable alerts_rev : alert list;
  on_alert : alert -> unit;
}

let create ?(on_alert = fun _ -> ()) ~objectives () =
  let states =
    List.map
      (fun obj ->
        let slot_s = obj.long_s /. 48. in
        let n_slots = 49 in
        {
          obj;
          slot_s;
          n_slots;
          good = Array.make n_slots 0;
          bad = Array.make n_slots 0;
          cur = 0;
          firing = false;
        })
      objectives
  in
  { states; alerts_rev = []; on_alert }

let slot st abs = ((abs mod st.n_slots) + st.n_slots) mod st.n_slots

let advance st abs =
  if abs > st.cur then begin
    let steps = min st.n_slots (abs - st.cur) in
    for k = 0 to steps - 1 do
      let s = slot st (abs - k) in
      st.good.(s) <- 0;
      st.bad.(s) <- 0
    done;
    st.cur <- abs
  end

let window_counts st ~horizon_s =
  let k = max 1 (min st.n_slots (int_of_float (Float.ceil (horizon_s /. st.slot_s)))) in
  let g = ref 0 and b = ref 0 in
  for j = 0 to k - 1 do
    let a = st.cur - j in
    if a >= 0 then begin
      let s = slot st a in
      g := !g + st.good.(s);
      b := !b + st.bad.(s)
    end
  done;
  (!g, !b)

let burn st ~horizon_s =
  let g, b = window_counts st ~horizon_s in
  let total = g + b in
  if total = 0 then (0., 0)
  else
    let bad_frac = float_of_int b /. float_of_int total in
    (bad_frac /. (1. -. st.obj.target), total)

let is_good obj ~ok ~latency_s =
  match obj.o_kind with
  | Availability -> ok
  | Latency_under bound -> ok && latency_s <= bound

let observe m ~now ~ok ~latency_s =
  List.iter
    (fun st ->
      let abs = int_of_float (Float.floor (Float.max 0. now /. st.slot_s)) in
      advance st abs;
      let s = slot st abs in
      if is_good st.obj ~ok ~latency_s then st.good.(s) <- st.good.(s) + 1
      else st.bad.(s) <- st.bad.(s) + 1;
      let burn_long, n_long = burn st ~horizon_s:st.obj.long_s in
      let burn_short, _ = burn st ~horizon_s:(short_s st.obj) in
      let should_fire =
        (not st.firing)
        && n_long >= st.obj.min_events
        && burn_long >= st.obj.factor
        && burn_short >= st.obj.factor
      in
      let should_resolve = st.firing && burn_short < st.obj.factor in
      if should_fire || should_resolve then begin
        st.firing <- should_fire;
        let a =
          {
            a_slo = st.obj.o_name;
            a_at = now;
            a_firing = should_fire;
            a_burn_long = burn_long;
            a_burn_short = burn_short;
          }
        in
        m.alerts_rev <- a :: m.alerts_rev;
        m.on_alert a;
        (* Alert instants land on the sim track at the monitor's clock,
           so they interleave with the server's spans in the Chrome
           export. Gated inside Span.instant on the Obs flag. *)
        Obs.Span.instant ~track:Obs.Sim ~ts:now
          ~attrs:
            [
              ("slo", Obs.Str st.obj.o_name);
              ("state", Obs.Str (if should_fire then "firing" else "resolved"));
              ("burn_long", Obs.Float burn_long);
              ("burn_short", Obs.Float burn_short);
            ]
          ~name:(if should_fire then "slo.fire" else "slo.resolve")
          ()
      end)
    m.states

let alerts m = List.rev m.alerts_rev

let firing m =
  List.filter_map (fun st -> if st.firing then Some st.obj.o_name else None)
    m.states

let summary m =
  List.map
    (fun st ->
      let burn_long, n = burn st ~horizon_s:st.obj.long_s in
      let burn_short, _ = burn st ~horizon_s:(short_s st.obj) in
      (st.obj.o_name, burn_long, burn_short, n, st.firing))
    m.states
