exception Timeout

module type S = sig
  type t

  val expired : t -> bool
  val check : t -> unit
  val remaining : t -> float
end

type t = float (* absolute wall time *)

let start ~seconds = Unix.gettimeofday () +. seconds
let unlimited () = infinity
let expired t = Unix.gettimeofday () > t
let check t = if expired t then raise Timeout
let remaining t = t -. Unix.gettimeofday ()

module Sim = struct
  type t = { clock : Clock.Sim.t; at : float }

  let at ~clock ~time = { clock; at = time }
  let start ~clock ~seconds = { clock; at = Clock.Sim.now clock +. seconds }
  let unlimited ~clock = { clock; at = infinity }
  let expired t = Clock.Sim.now t.clock > t.at
  let check t = if expired t then raise Timeout
  let remaining t = t.at -. Clock.Sim.now t.clock
end

module Ambient = struct
  (* One mutable cell per domain: kernels poll whatever deadline the
     caller armed without threading it through every signature, and a
     worker domain never sees the main domain's deadline. *)
  let key = Domain.DLS.new_key (fun () : t option ref -> ref None)

  let armed () = !(Domain.DLS.get key) <> None

  let with_deadline dl f =
    let cell = Domain.DLS.get key in
    let saved = !cell in
    cell := Some dl;
    Fun.protect ~finally:(fun () -> cell := saved) f

  let checkpoint () =
    match !(Domain.DLS.get key) with
    | None -> ()
    | Some dl -> check dl
end
