(* Genomic interval primitives shared by every Q6 physical plan.

   Intervals are half-open [lo, hi) on a single integer coordinate axis.
   Every join here returns pairs in the same canonical order — ascending
   (left index, right index) — so engine payloads built from any of
   these kernels digest identically. *)

type iv = { id : int; lo : int; hi : int }

let make ~id ~lo ~hi =
  if hi < lo then invalid_arg "Ranges.make: hi < lo";
  { id; lo; hi }

let of_start_len ~id ~start ~len =
  if len < 0 then invalid_arg "Ranges.of_start_len: negative length";
  { id; lo = start; hi = start + len }

let is_empty iv = iv.hi <= iv.lo
let length iv = max 0 (iv.hi - iv.lo)

(* Overlap length of two half-open intervals; 0 when disjoint or merely
   adjacent ([0,5) and [5,9) share no base). *)
let overlap_len a b = max 0 (min a.hi b.hi - max a.lo b.lo)
let overlaps ?(min_overlap = 1) a b = overlap_len a b >= max 1 min_overlap

(* The oracle join: every pair, quadratic, no cleverness.  Output is
   ascending (position in [xs], position in [ys]) which is the canonical
   ordering when both inputs are given in id order. *)
let nested_loop_join ?(min_overlap = 1) xs ys =
  let out = ref [] in
  for i = Array.length xs - 1 downto 0 do
    let row = ref [] in
    for j = Array.length ys - 1 downto 0 do
      let len = overlap_len xs.(i) ys.(j) in
      if len >= max 1 min_overlap then
        row := (xs.(i).id, ys.(j).id, len) :: !row
    done;
    out := !row @ !out
  done;
  !out

(* Sort-merge interval sweep.  Both sides are sorted by [lo]; for each
   left interval we drop right intervals that end at-or-before its start
   (they can never overlap anything later either, because left starts
   are non-decreasing), then scan forward until right starts pass the
   left end.  O((n + m) log(n + m) + output).

   The active list is kept as a simple growable buffer; dead entries are
   compacted in place, preserving lo-order.  Matches within one left
   interval are emitted sorted by id so the result is canonical after a
   final sort by (left id, right id). *)
let sweep_join ?(min_overlap = 1) xs ys =
  let need = max 1 min_overlap in
  let xs = Array.copy xs and ys = Array.copy ys in
  let by_lo a b =
    let c = Int.compare a.lo b.lo in
    if c <> 0 then c else Int.compare a.id b.id
  in
  Array.sort by_lo xs;
  Array.sort by_lo ys;
  let active = ref [||] and n_active = ref 0 in
  let push iv =
    if !n_active = Array.length !active then begin
      let grown = Array.make (max 8 (2 * !n_active)) iv in
      Array.blit !active 0 grown 0 !n_active;
      active := grown
    end;
    !active.(!n_active) <- iv;
    incr n_active
  in
  let out = ref [] in
  let j = ref 0 in
  let m = Array.length ys in
  Array.iter
    (fun x ->
      (* Admit every right interval that starts before this left ends. *)
      while !j < m && ys.(!j).lo < x.hi do
        push ys.(!j);
        incr j
      done;
      (* Compact: drop actives that end at-or-before this left's start;
         left starts only grow, so they are dead for good. *)
      let keep = ref 0 in
      for k = 0 to !n_active - 1 do
        let y = !active.(k) in
        if y.hi > x.lo then begin
          !active.(!keep) <- y;
          incr keep
        end
      done;
      n_active := !keep;
      let matches = ref [] in
      for k = 0 to !n_active - 1 do
        let y = !active.(k) in
        let len = overlap_len x y in
        if len >= need then matches := (x.id, y.id, len) :: !matches
      done;
      out := List.rev_append !matches !out)
    xs;
  List.sort
    (fun (a1, b1, _) (a2, b2, _) ->
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare b1 b2)
    !out

(* Genomic binning for the shuffle plans: fixed-width bins over the
   coordinate axis.  An interval lands in every bin it touches; a pair
   is counted exactly once, by the bin holding the larger of the two
   starts — both intervals of an overlapping pair necessarily touch
   that bin. *)
let default_bin_width = 65_536

let bin_of ~bin_width pos =
  if bin_width <= 0 then invalid_arg "Ranges.bin_of: bin_width";
  if pos < 0 then -1 - ((-1 - pos) / bin_width) else pos / bin_width

let bins_of ~bin_width iv =
  if is_empty iv then []
  else begin
    let first = bin_of ~bin_width iv.lo in
    let last = bin_of ~bin_width (iv.hi - 1) in
    List.init (last - first + 1) (fun k -> first + k)
  end

let owns_pair ~bin_width ~bin a b = bin_of ~bin_width (max a.lo b.lo) = bin

let count_pairs pairs = List.length pairs
