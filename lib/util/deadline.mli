(** Cooperative timeouts — the benchmark's "cut off all computation after
    two hours" rule, scaled down. Long-running phases call [check]
    periodically; the harness treats {!Timeout} (like memory-allocation
    failure) as an "infinite" result.

    Two clock domains share one interface ({!S}) and one exception:

    - the flat functions below run against the *wall clock* and bound the
      real execution time of single-node engines;
    - {!Sim} runs against a {!Gb_util.Clock.Sim} simulated clock and
      bounds *simulated* seconds — the cluster/MapReduce cut-off, where
      modelled communication or recovery time must count against the
      window even though no wall time passes ([Cluster.set_deadline] is
      built on it).

    Both raise the same {!Timeout}, so the harness maps either domain to
    the same [Timed_out] outcome. *)

exception Timeout

(** What every deadline flavour supports. *)
module type S = sig
  type t

  val expired : t -> bool

  val check : t -> unit
  (** Raises {!Timeout} once the deadline has passed. *)

  val remaining : t -> float
end

type t

val start : seconds:float -> t
(** Wall-clock deadline [seconds] from now. *)

val unlimited : unit -> t
val check : t -> unit
(** Raises {!Timeout} once the deadline has passed. *)

val expired : t -> bool
val remaining : t -> float

(** Deadlines on a simulated clock: expiry is judged against
    [Clock.Sim.now], so charging modelled time (communication, backoff,
    recovery re-execution) can fire the deadline with no wall time
    elapsing. *)
module Sim : sig
  include S

  val at : clock:Clock.Sim.t -> time:float -> t
  (** Absolute: expires once the clock passes [time] simulated seconds. *)

  val start : clock:Clock.Sim.t -> seconds:float -> t
  (** Relative to the clock's current reading. *)

  val unlimited : clock:Clock.Sim.t -> t
end

(** Cooperative cancellation without plumbing: a wall-clock deadline
    armed for the current domain that long-running kernels can poll from
    their iteration loops. Engines historically checked their deadline
    only at phase boundaries, so a single oversized factorization could
    overrun its budget by minutes; kernels now call {!checkpoint} once
    per outer iteration and abort mid-phase.

    The armed deadline is domain-local: a query cancelled on one Domain
    pool lane never aborts its neighbours. With nothing armed a
    checkpoint is one domain-local read and a branch. *)
module Ambient : sig
  val with_deadline : t -> (unit -> 'a) -> 'a
  (** Arm [dl] for the current domain while [f] runs; restores the
      previously armed deadline (if any) on any exit. *)

  val checkpoint : unit -> unit
  (** Raises {!Timeout} iff a deadline is armed on this domain and has
      passed. Cheap enough for per-iteration use in kernel loops. *)

  val armed : unit -> bool
end
