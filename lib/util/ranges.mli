(** Genomic interval primitives for the Q6 overlap-join family.

    Intervals are half-open [\[lo, hi)] on one integer coordinate axis.
    All joins return pairs [(left_id, right_id, overlap_len)] in
    canonical ascending [(left_id, right_id)] order (given id-ordered
    inputs for {!nested_loop_join}), so payloads built from any kernel
    digest identically. *)

type iv = { id : int; lo : int; hi : int }

val make : id:int -> lo:int -> hi:int -> iv
(** Raises [Invalid_argument] if [hi < lo]. *)

val of_start_len : id:int -> start:int -> len:int -> iv
(** Half-open interval [\[start, start+len)]. Raises on negative [len]. *)

val is_empty : iv -> bool
val length : iv -> int

val overlap_len : iv -> iv -> int
(** Bases shared by two half-open intervals; adjacent intervals share 0. *)

val overlaps : ?min_overlap:int -> iv -> iv -> bool
(** [overlaps a b] iff they share at least [max 1 min_overlap] bases. *)

val nested_loop_join :
  ?min_overlap:int -> iv array -> iv array -> (int * int * int) list
(** Quadratic oracle join: every overlapping pair, in input order. *)

val sweep_join :
  ?min_overlap:int -> iv array -> iv array -> (int * int * int) list
(** Sort-merge interval sweep; result sorted by [(left_id, right_id)].
    Agrees with {!nested_loop_join} (after sorting) on any inputs. *)

val default_bin_width : int

val bin_of : bin_width:int -> int -> int
(** Bin index of a coordinate; floor division, correct for negatives. *)

val bins_of : bin_width:int -> iv -> int list
(** Every bin an interval touches; empty intervals touch none. *)

val owns_pair : bin_width:int -> bin:int -> iv -> iv -> bool
(** De-duplication rule for shuffle plans: a pair is owned by exactly
    the bin containing [max lo_a lo_b]; both intervals of an
    overlapping pair touch that bin. *)

val count_pairs : (int * int * int) list -> int
