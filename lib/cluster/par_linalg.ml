module Mat = Gb_linalg.Mat
module Blas = Gb_linalg.Blas

(* Bracket a distributed kernel with a simulated-clock span: t0/t1 are
   cluster sim time, so the span sits on the sim track alongside the
   superstep and comm spans it contains. *)
let par_span cluster name f =
  if not (Gb_obs.Obs.enabled ()) then f ()
  else begin
    let t0 = Cluster.elapsed cluster in
    let r = f () in
    Gb_obs.Obs.Span.emit ~cat:"par" ~name ~t0 ~t1:(Cluster.elapsed cluster) ();
    r
  end

let ata cluster parts =
  par_span cluster "par.ata" @@ fun () ->
  let locals = Cluster.superstep cluster (fun node -> Blas.ata parts.(node)) in
  Cluster.allreduce_mat cluster locals

let col_means cluster parts =
  let total_rows = Array.fold_left (fun acc p -> acc + p.Mat.rows) 0 parts in
  let sums =
    Cluster.superstep cluster (fun node ->
        let p = parts.(node) in
        let s = Array.make p.Mat.cols 0. in
        for i = 0 to p.Mat.rows - 1 do
          for j = 0 to p.Mat.cols - 1 do
            s.(j) <- s.(j) +. Mat.unsafe_get p i j
          done
        done;
        s)
  in
  let sum = Cluster.allreduce_sum cluster sums in
  Array.map (fun s -> s /. float_of_int (max 1 total_rows)) sum

let covariance cluster parts =
  par_span cluster "par.covariance" @@ fun () ->
  let means = col_means cluster parts in
  let total_rows = Array.fold_left (fun acc p -> acc + p.Mat.rows) 0 parts in
  let locals =
    Cluster.superstep cluster (fun node ->
        let p = parts.(node) in
        let centered =
          Mat.init p.Mat.rows p.Mat.cols (fun i j ->
              Mat.unsafe_get p i j -. means.(j))
        in
        Blas.ata centered)
  in
  let xtx = Cluster.allreduce_mat cluster locals in
  Mat.scale (1. /. float_of_int (total_rows - 1)) xtx

let with_intercept p =
  Mat.init p.Mat.rows (p.Mat.cols + 1) (fun i j ->
      if j = 0 then 1. else Mat.unsafe_get p i (j - 1))

let regression cluster parts ys =
  if Array.length ys <> Array.length parts then
    invalid_arg "Par_linalg.regression";
  par_span cluster "par.regression" @@ fun () ->
  let d = (if Array.length parts = 0 then 0 else parts.(0).Mat.cols) + 1 in
  let locals =
    Cluster.superstep cluster (fun node ->
        let xa = with_intercept parts.(node) in
        (Blas.ata xa, Blas.gemv_t xa ys.(node)))
  in
  let xtx = Cluster.allreduce_mat cluster (Array.map fst locals) in
  let xty = Cluster.allreduce_sum cluster (Array.map snd locals) in
  assert (Array.length xty = d);
  Gb_linalg.Solve.cholesky xtx xty

let matvec cluster parts v =
  Cluster.broadcast cluster ~bytes:(8 * Array.length v);
  let locals =
    Cluster.superstep cluster (fun node -> Blas.gemv parts.(node) v)
  in
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 locals in
  Cluster.gather cluster ~bytes_per_node:(8 * total / Cluster.nodes cluster);
  Array.concat (Array.to_list locals)

let matvec_t cluster parts v =
  (* v is partitioned conformally with the row blocks. *)
  let offsets = Array.make (Array.length parts) 0 in
  let off = ref 0 in
  Array.iteri
    (fun node p ->
      offsets.(node) <- !off;
      off := !off + p.Mat.rows)
    parts;
  if Array.length v <> !off then invalid_arg "Par_linalg.matvec_t";
  let locals =
    Cluster.superstep cluster (fun node ->
        let p = parts.(node) in
        Blas.gemv_t p (Array.sub v offsets.(node) p.Mat.rows))
  in
  Cluster.allreduce_sum cluster locals

let lanczos_eigs cluster ~k parts =
  par_span cluster "par.lanczos_eigs" @@ fun () ->
  let cols = if Array.length parts = 0 then 0 else parts.(0).Mat.cols in
  let apply v = matvec_t cluster parts (matvec cluster parts v) in
  let res = Gb_linalg.Lanczos.symmetric ~n:cols ~k:(min k cols) apply in
  res.Gb_linalg.Lanczos.eigenvalues

let r_squared cluster parts ys ~beta =
  par_span cluster "par.r_squared" @@ fun () ->
  let partials =
    Cluster.superstep cluster (fun node ->
        let x = parts.(node) and y = ys.(node) in
        let ss_res = ref 0. and sum = ref 0. and sum2 = ref 0. in
        for i = 0 to x.Mat.rows - 1 do
          let pred = ref beta.(0) in
          for j = 0 to x.Mat.cols - 1 do
            pred := !pred +. (beta.(j + 1) *. Mat.unsafe_get x i j)
          done;
          let r = y.(i) -. !pred in
          ss_res := !ss_res +. (r *. r);
          sum := !sum +. y.(i);
          sum2 := !sum2 +. (y.(i) *. y.(i))
        done;
        [| !ss_res; !sum; !sum2; float_of_int x.Mat.rows |])
  in
  let t = Cluster.allreduce_sum cluster partials in
  let n = t.(3) in
  let ss_tot = t.(2) -. (t.(1) *. t.(1) /. n) in
  if ss_tot = 0. then 1. else 1. -. (t.(0) /. ss_tot)
