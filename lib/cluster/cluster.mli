(** Simulated multi-node execution.

    Work runs as BSP-style supersteps: the per-node closures are executed
    for real (sequentially, on this machine) and individually timed; the
    simulated clock advances by the *maximum* per-node time, so load
    imbalance shows up exactly as it would on a real cluster. Communication
    primitives charge modelled wire time and account bytes.

    A {!Gb_fault.Fault.plan} can be injected ({!set_fault_plan}); the
    cluster then survives the planned faults instead of crashing:

    - a {e node crash} marks the node dead; its lost work since the last
      checkpoint is re-executed on a surviving node (charged serially) and
      its checkpointed state is fetched over the interconnect; from then on
      its tasks run on the least-loaded survivor each superstep;
    - a {e straggler} slowdown is capped by speculative re-execution — when
      shipping the task's input to a healthy node and re-running it beats
      waiting, the backup's finish time counts and the straggling attempt
      becomes wasted work;
    - a {e transient memory failure} retries the node's task under the
      configured {!Gb_fault.Retry.policy}, with exponential backoff charged
      to the simulated clock; past the budget it escalates to
      {!Gb_fault.Fault.Injected_oom};
    - a {e dropped message} is retransmitted after an ack timeout; a
      {e delayed message} stalls the operation.

    All recovery work, backoff and retransmission is charged to the
    simulated clock, so the deadline set by {!set_deadline} bounds the
    degraded run too, and {!stats} reports the overhead. *)

type t

val create : ?net:Netmodel.t -> nodes:int -> unit -> t
val nodes : t -> int

val elapsed : t -> float
(** Simulated seconds so far. *)

val comm_bytes : t -> int
(** Total bytes charged to the interconnect. *)

val comm_seconds : t -> float

val superstep : t -> (int -> 'a) -> 'a array
(** [superstep c f] runs [f node] for each node; returns per-node results;
    advances the clock by the slowest node. Injected faults are applied
    here (crash recovery before the step, slowdowns/retries per task); a
    deadline passed mid-superstep raises [Gb_util.Deadline.Timeout] when
    the step completes. *)

val superstep_scaled : t -> speedup:float -> (int -> 'a) -> 'a array
(** Like {!superstep} with each node's measured time divided by [speedup]
    (models per-node accelerator execution of the same kernel). *)

val set_compute_speedup : t -> float -> unit
(** A multiplier applied to every subsequent superstep's measured time —
    used to model per-node coprocessors without threading a factor through
    the parallel kernels. Reset it to 1.0 after the accelerated phase. *)

val allreduce_sum : t -> float array array -> float array
(** Element-wise sum of per-node vectors, charged as a ring allreduce. *)

val allreduce_mat : t -> Gb_linalg.Mat.t array -> Gb_linalg.Mat.t

val broadcast : t -> bytes:int -> unit
val gather : t -> bytes_per_node:int -> unit
val shuffle : t -> total_bytes:int -> unit
val advance : t -> float -> unit
(** Charge explicit extra simulated time (e.g. a modelled disk spill). *)

val set_deadline : t -> float -> unit
(** Raise [Gb_util.Deadline.Timeout] when simulated time passes this
    (absolute, in simulated seconds — implemented as a
    [Gb_util.Deadline.Sim] deadline on the cluster's clock, unlike the
    wall-clock deadlines single-node engines use). *)

(** {1 Fault tolerance} *)

val set_fault_plan : t -> Gb_fault.Fault.plan -> unit
(** Arm a deterministic fault plan. Replaces any previous plan and
    reseeds the backoff-jitter generator from the plan's seed, so the
    same plan replays identically. *)

val set_retry_policy : t -> Gb_fault.Retry.policy -> unit
(** Policy for transient-failure retries (default
    {!Gb_fault.Retry.default}). *)

val set_checkpoint : t -> every:int -> bytes_per_node:int -> unit
(** Checkpoint every [every] supersteps ([0] disables): live nodes write
    [bytes_per_node] of state in parallel (one modelled transfer per
    checkpoint), and a crash only loses — and re-executes — work since
    the last checkpoint instead of the whole run. [bytes_per_node] also
    sizes crash-recovery fetches and speculative input shipping. *)

val set_task_cost : t -> float option -> unit
(** [Some c] switches the superstep timer to a virtual cost of [c]
    simulated seconds per task instead of measuring wall time — closures
    still execute for real (results are genuine) but the clock becomes
    fully deterministic, which the fault-replay tests rely on. [None]
    restores measured timing. *)

type recovery_stats = {
  crashes_recovered : int;
  oom_retries : int;
  speculative_restarts : int;
  messages_dropped : int;
  messages_delayed : int;
  wasted_seconds : float;
      (** simulated seconds of redone work, abandoned attempts, backoff
          waits and retransmissions *)
  checkpoint_seconds : float;  (** overhead of checkpoint writes *)
}

val no_recovery : recovery_stats

val stats : t -> recovery_stats
val degraded : t -> bool
(** Whether any fault was absorbed (i.e. [stats t <> no_recovery]). *)

val live_nodes : t -> int
(** Nodes that have not crashed. *)
