module Sim = Gb_util.Clock.Sim
module Stopwatch = Gb_util.Clock.Stopwatch
module Fault = Gb_fault.Fault
module Retry = Gb_fault.Retry
module Obs = Gb_obs.Obs
module Metric = Gb_obs.Metric

(* Trace counters (no-ops while tracing is disabled). The sim spans
   emitted below land on the simulated-clock track with the node rank as
   the thread id, so Perfetto shows one lane per node. *)
let c_comm_bytes = Metric.counter ~unit_:"byte" "cluster.comm_bytes"
let c_supersteps = Metric.counter ~unit_:"superstep" "cluster.supersteps"
let c_checkpoint_s = Metric.counter ~unit_:"s" "cluster.checkpoint_s"
let c_retries = Metric.counter ~unit_:"retry" "fault.retries"
let c_backoff_s = Metric.counter ~unit_:"s" "fault.backoff_s"
let c_dropped = Metric.counter ~unit_:"message" "fault.messages_dropped"
let c_delayed = Metric.counter ~unit_:"message" "fault.messages_delayed"
let c_speculative = Metric.counter ~unit_:"restart" "fault.speculative_restarts"
let c_crashes = Metric.counter ~unit_:"crash" "fault.crashes_recovered"
let c_wasted_s = Metric.counter ~unit_:"s" "fault.wasted_s"

type recovery_stats = {
  crashes_recovered : int;
  oom_retries : int;
  speculative_restarts : int;
  messages_dropped : int;
  messages_delayed : int;
  wasted_seconds : float;
  checkpoint_seconds : float;
}

let no_recovery =
  {
    crashes_recovered = 0;
    oom_retries = 0;
    speculative_restarts = 0;
    messages_dropped = 0;
    messages_delayed = 0;
    wasted_seconds = 0.;
    checkpoint_seconds = 0.;
  }

(* Acknowledgement timeout before a lost message is retransmitted. *)
let retransmit_timeout_s = 0.01

(* State shipped to the recovery node when no checkpoint size is
   configured (a closure plus partition metadata, not the data block). *)
let default_recovery_bytes = 4096

type t = {
  nodes : int;
  net : Netmodel.t;
  clock : Sim.t;
  mutable comm_bytes : int;
  mutable comm_seconds : float;
  mutable deadline : Gb_util.Deadline.Sim.t;
  mutable compute_speedup : float;
  (* fault injection + recovery *)
  mutable plan : Fault.plan;
  mutable frng : Gb_util.Prng.t;
  mutable retry_policy : Retry.policy;
  mutable step : int;
  mutable ops : int;
  dead : bool array;
  since_ckpt : float array;
  mutable ckpt_every : int; (* 0 = checkpointing off *)
  mutable ckpt_bytes : int;
  mutable task_cost : float option;
  mutable stats : recovery_stats;
}

let create ?(net = Netmodel.default) ~nodes () =
  if nodes < 1 then invalid_arg "Cluster.create: nodes";
  let clock = Sim.create () in
  {
    nodes;
    net;
    clock;
    comm_bytes = 0;
    comm_seconds = 0.;
    deadline = Gb_util.Deadline.Sim.unlimited ~clock;
    compute_speedup = 1.;
    plan = Fault.empty;
    frng = Fault.rng Fault.empty;
    retry_policy = Retry.default;
    step = 0;
    ops = 0;
    dead = Array.make nodes false;
    since_ckpt = Array.make nodes 0.;
    ckpt_every = 0;
    ckpt_bytes = default_recovery_bytes;
    task_cost = None;
    stats = no_recovery;
  }

let nodes t = t.nodes
let elapsed t = Sim.now t.clock
let comm_bytes t = t.comm_bytes
let comm_seconds t = t.comm_seconds
let check t = Gb_util.Deadline.Sim.check t.deadline

let set_deadline t d =
  t.deadline <- Gb_util.Deadline.Sim.at ~clock:t.clock ~time:d

let set_fault_plan t plan =
  t.plan <- plan;
  t.frng <- Fault.rng plan

let set_retry_policy t p = t.retry_policy <- p

let set_checkpoint t ~every ~bytes_per_node =
  if every < 0 || bytes_per_node < 0 then invalid_arg "Cluster.set_checkpoint";
  t.ckpt_every <- every;
  t.ckpt_bytes <- max bytes_per_node default_recovery_bytes

let set_task_cost t c = t.task_cost <- c
let stats t = t.stats
let degraded t = t.stats <> no_recovery

let live_nodes t =
  Array.fold_left (fun n d -> if d then n else n + 1) 0 t.dead

let charge_comm ?(label = "transfer") t ~bytes ~seconds =
  let op = t.ops in
  t.ops <- op + 1;
  let seconds =
    if Fault.dropped t.plan ~op then begin
      (* The payload is lost: wait out the ack timeout, then send again. *)
      t.stats <-
        {
          t.stats with
          messages_dropped = t.stats.messages_dropped + 1;
          wasted_seconds =
            t.stats.wasted_seconds +. seconds +. retransmit_timeout_s;
        };
      Metric.add c_dropped 1;
      Metric.addf c_wasted_s (seconds +. retransmit_timeout_s);
      (2. *. seconds) +. retransmit_timeout_s
    end
    else seconds
  in
  let seconds =
    let d = Fault.delay t.plan ~op in
    if d > 0. then begin
      t.stats <- { t.stats with messages_delayed = t.stats.messages_delayed + 1 };
      Metric.add c_delayed 1;
      seconds +. d
    end
    else seconds
  in
  t.comm_bytes <- t.comm_bytes + bytes;
  t.comm_seconds <- t.comm_seconds +. seconds;
  Metric.add c_comm_bytes bytes;
  let t0 = Sim.now t.clock in
  Sim.advance t.clock seconds;
  Obs.Span.emit ~cat:"comm" ~name:("comm:" ^ label)
    ~attrs:
      [
        ("bytes", Obs.Int bytes);
        ("latency_s", Obs.Float t.net.Netmodel.latency_s);
        ("bandwidth_bps", Obs.Float t.net.Netmodel.bandwidth_bps);
      ]
    ~t0 ~t1:(Sim.now t.clock) ();
  check t

(* A crash at superstep [step] loses everything the node computed since
   the last checkpoint; a surviving node re-executes that work (charged
   serially — the survivor cannot overlap it with new supersteps) after
   fetching the dead node's last checkpointed state. *)
let handle_crashes t step =
  for node = 0 to t.nodes - 1 do
    if
      (not t.dead.(node))
      && Fault.crash_at t.plan ~node ~superstep:step
      && live_nodes t > 1
    then begin
      t.dead.(node) <- true;
      let redo = t.since_ckpt.(node) in
      t.since_ckpt.(node) <- 0.;
      t.stats <-
        {
          t.stats with
          crashes_recovered = t.stats.crashes_recovered + 1;
          wasted_seconds = t.stats.wasted_seconds +. redo;
        };
      Metric.add c_crashes 1;
      Metric.addf c_wasted_s redo;
      let t0 = Sim.now t.clock in
      Sim.advance t.clock redo;
      charge_comm ~label:"checkpoint-fetch" t ~bytes:t.ckpt_bytes
        ~seconds:(Netmodel.transfer_time t.net ~bytes:t.ckpt_bytes);
      Obs.Span.emit ~cat:"recovery" ~name:"recovery:crash" ~tid:(node + 1)
        ~attrs:[ ("superstep", Obs.Int step); ("redo_s", Obs.Float redo) ]
        ~t0 ~t1:(Sim.now t.clock) ()
    end
  done;
  if live_nodes t = 0 then
    raise (Fault.Node_lost "Cluster: every node has crashed")

let maybe_checkpoint t step =
  if t.ckpt_every > 0 && (step + 1) mod t.ckpt_every = 0 then begin
    (* Every live node writes its state to replicated storage in
       parallel; the superstep stalls for one transfer. *)
    let secs = Netmodel.transfer_time t.net ~bytes:t.ckpt_bytes in
    let t0 = Sim.now t.clock in
    Sim.advance t.clock secs;
    t.stats <-
      { t.stats with checkpoint_seconds = t.stats.checkpoint_seconds +. secs };
    Metric.addf c_checkpoint_s secs;
    Obs.Span.emit ~cat:"checkpoint" ~name:"checkpoint"
      ~attrs:
        [ ("superstep", Obs.Int step); ("bytes_per_node", Obs.Int t.ckpt_bytes) ]
      ~t0 ~t1:(Sim.now t.clock) ();
    Array.fill t.since_ckpt 0 t.nodes 0.
  end

let superstep_scaled t ~speedup f =
  check t;
  let step = t.step in
  t.step <- step + 1;
  let step_t0 = Sim.now t.clock in
  handle_crashes t step;
  let tasks_t0 = Sim.now t.clock in
  let scale = speedup *. t.compute_speedup in
  let busy = Array.make t.nodes 0. in
  let results = Array.make t.nodes None in
  for node = 0 to t.nodes - 1 do
    let r, dt =
      match t.task_cost with
      | Some c -> (f node, c)
      | None -> Stopwatch.time (fun () -> f node)
    in
    results.(node) <- Some r;
    (* Floor at 1ns: a measured 0 (below clock resolution) would make a
       straggler's endured stall vanish ([slowed -. dt = 0.]), so whether
       the run reports as degraded would depend on timer granularity. *)
    let dt = Float.max (dt /. scale) 1e-9 in
    (* A dead node's task runs on the least-loaded survivor. *)
    let executor =
      if not t.dead.(node) then node
      else begin
        let best = ref (-1) in
        for i = 0 to t.nodes - 1 do
          if (not t.dead.(i)) && (!best < 0 || busy.(i) < busy.(!best)) then
            best := i
        done;
        !best
      end
    in
    (* Straggler slowdown, capped by speculative re-execution: when a
       backup copy on a healthy node (input transfer + one clean run)
       beats waiting for the straggler, the backup's finish time counts
       and the straggling attempt is wasted work. *)
    let dt =
      let slow = Fault.slowdown t.plan ~node ~superstep:step in
      if slow <= 1. then dt
      else begin
        let slowed = dt *. slow in
        let backup =
          dt +. Netmodel.transfer_time t.net ~bytes:t.ckpt_bytes
        in
        if backup < slowed && live_nodes t > 1 then begin
          t.stats <-
            {
              t.stats with
              speculative_restarts = t.stats.speculative_restarts + 1;
              wasted_seconds = t.stats.wasted_seconds +. dt;
            };
          Metric.add c_speculative 1;
          Metric.addf c_wasted_s dt;
          Obs.Span.instant ~track:Obs.Sim ~tid:(node + 1) ~ts:tasks_t0
            ~name:"speculative-restart"
            ~attrs:[ ("superstep", Obs.Int step) ]
            ();
          backup
        end
        else begin
          (* No backup worth launching (or nobody to run it): the stall
             is endured, but it is still fault-induced overhead. *)
          t.stats <-
            {
              t.stats with
              wasted_seconds = t.stats.wasted_seconds +. (slowed -. dt);
            };
          Metric.addf c_wasted_s (slowed -. dt);
          slowed
        end
      end
    in
    (* Transient memory failures: each failed attempt runs (and is
       thrown away), then backs off before retrying; past the retry
       budget the failure is permanent. *)
    let dt =
      let failures = Fault.oom_failures t.plan ~node ~superstep:step in
      if failures = 0 then dt
      else if failures >= t.retry_policy.Retry.max_attempts then
        raise
          (Fault.Injected_oom
             (Printf.sprintf
                "node %d superstep %d: memory allocation failed %d times"
                node step failures))
      else begin
        let backoff = ref 0. in
        for attempt = 1 to failures do
          backoff :=
            !backoff +. Retry.delay_for t.retry_policy ~rng:t.frng ~attempt
        done;
        t.stats <-
          {
            t.stats with
            oom_retries = t.stats.oom_retries + failures;
            wasted_seconds =
              t.stats.wasted_seconds
              +. (dt *. float_of_int failures)
              +. !backoff;
          };
        Metric.add c_retries failures;
        Metric.addf c_backoff_s !backoff;
        Metric.addf c_wasted_s ((dt *. float_of_int failures) +. !backoff);
        Obs.Span.instant ~track:Obs.Sim ~tid:(node + 1) ~ts:tasks_t0
          ~name:"oom-retry"
          ~attrs:
            [ ("superstep", Obs.Int step); ("failures", Obs.Int failures) ]
          ();
        (dt *. float_of_int (failures + 1)) +. !backoff
      end
    in
    busy.(executor) <- busy.(executor) +. dt;
    t.since_ckpt.(executor) <- t.since_ckpt.(executor) +. dt
  done;
  let worst = Array.fold_left Float.max 0. busy in
  Sim.advance t.clock worst;
  Metric.add c_supersteps 1;
  if Obs.enabled () then
    (* Per-node task spans: every node's work starts when the compute
       phase does and lasts that executor's accumulated busy time. *)
    for e = 0 to t.nodes - 1 do
      if busy.(e) > 0. then
        Obs.Span.emit ~cat:"task"
          ~name:(Printf.sprintf "task:step%d" step)
          ~tid:(e + 1)
          ~attrs:[ ("superstep", Obs.Int step) ]
          ~t0:tasks_t0 ~t1:(tasks_t0 +. busy.(e)) ()
    done;
  maybe_checkpoint t step;
  Obs.Span.emit ~cat:"superstep"
    ~name:(Printf.sprintf "superstep:%d" step)
    ~attrs:[ ("live_nodes", Obs.Int (live_nodes t)) ]
    ~t0:step_t0 ~t1:(Sim.now t.clock) ();
  check t;
  Array.map
    (fun r -> match r with Some r -> r | None -> assert false)
    results

let superstep t f = superstep_scaled t ~speedup:1. f

let set_compute_speedup t s =
  if s <= 0. then invalid_arg "Cluster.set_compute_speedup";
  t.compute_speedup <- s

let allreduce_sum t parts =
  if Array.length parts <> t.nodes then invalid_arg "Cluster.allreduce_sum";
  let n = Array.length parts.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> n then invalid_arg "Cluster.allreduce_sum: ragged")
    parts;
  let out = Array.make n 0. in
  Array.iter (fun p -> Gb_linalg.Vec.axpy 1. p out) parts;
  let bytes = 8 * n in
  charge_comm ~label:"allreduce" t ~bytes
    ~seconds:(Netmodel.allreduce_time t.net ~nodes:t.nodes ~bytes);
  out

let allreduce_mat t parts =
  if Array.length parts <> t.nodes then invalid_arg "Cluster.allreduce_mat";
  let first = parts.(0) in
  let acc = Gb_linalg.Mat.copy first in
  for node = 1 to t.nodes - 1 do
    let p = parts.(node) in
    Gb_linalg.Mat.iteri
      (fun i j v ->
        Gb_linalg.Mat.unsafe_set acc i j (Gb_linalg.Mat.unsafe_get acc i j +. v))
      p
  done;
  let rows, cols = Gb_linalg.Mat.dims first in
  let bytes = 8 * rows * cols in
  charge_comm ~label:"allreduce" t ~bytes
    ~seconds:(Netmodel.allreduce_time t.net ~nodes:t.nodes ~bytes);
  acc

let broadcast t ~bytes =
  charge_comm ~label:"broadcast" t ~bytes
    ~seconds:(Netmodel.broadcast_time t.net ~nodes:t.nodes ~bytes)

let gather t ~bytes_per_node =
  let bytes = bytes_per_node * (t.nodes - 1) in
  charge_comm ~label:"gather" t ~bytes
    ~seconds:
      (if t.nodes <= 1 then 0.
       else
         float_of_int (t.nodes - 1) *. Netmodel.transfer_time t.net ~bytes:bytes_per_node)

let shuffle t ~total_bytes =
  charge_comm ~label:"shuffle" t ~bytes:total_bytes
    ~seconds:(Netmodel.shuffle_time t.net ~nodes:t.nodes ~total_bytes)

let advance t dt =
  Sim.advance t.clock dt;
  check t
